"""Parameterized scenario generators: beyond the paper's two markets.

The paper evaluates two hand-built markets (9 and 8 CP types). By Lemma 2
every "type" is an aggregate of CPs with similar traffic characteristics,
so nothing stops the same machinery running markets of arbitrary size and
heterogeneity. This module generates them:

* :func:`scaled_market` — a deterministic large-N lattice over the
  ``(α, β)`` sensitivity plane, total demand held constant so the
  congestion operating point stays comparable as ``n_types`` grows from
  8 to thousands (the Lemma 2 dis-aggregation story).
* :func:`random_market` — a seeded heterogeneous population drawing every
  CP's demand family, throughput family, parameters and profitability at
  random over all families in :mod:`repro.network`. Same seed, same
  market — the seed is recorded in the spec metadata and survives the
  ``repro-scenario/1`` round trip.
* :func:`capacity_variant` / :func:`utilization_variant` — derived
  scenarios swapping the ISP's capacity or utilization metric while
  keeping the CP population, with lineage recorded in metadata.

A few canonical instances (``scaled-64``, ``scaled-256``, ``scaled-1024``,
``random-12``) are registered for direct CLI use.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.exceptions import ModelError
from repro.network.demand import (
    DemandFunction,
    ExponentialDemand,
    LinearDemand,
    LogitDemand,
    ScaledDemand,
    ShiftedPowerDemand,
)
from repro.network.throughput import (
    ExponentialThroughput,
    PowerLawThroughput,
    RationalThroughput,
    ThroughputFunction,
)
from repro.network.utilization import UtilizationFunction
from repro.providers.content_provider import ContentProvider, exponential_cp
from repro.providers.isp import AccessISP
from repro.providers.market import Market
from repro.scenarios.registry import register_scenario
from repro.scenarios.spec import ScenarioSpec
from repro.simulation.trajectory import Shock, dynamics_settings

__all__ = [
    "DEMAND_FAMILIES",
    "THROUGHPUT_FAMILIES",
    "scaled_market",
    "random_market",
    "capacity_variant",
    "utilization_variant",
    "oligopoly",
    "trajectory_variant",
    "shocked_market",
]

#: Default sweep axis for generated scenarios: the paper's range, thinned.
_GENERATOR_PRICES: tuple[float, ...] = tuple(
    float(x) for x in np.round(np.linspace(0.0, 2.0, 21), 10)
)

#: Demand families :func:`random_market` can draw from.
DEMAND_FAMILIES: tuple[str, ...] = ("exponential", "logit", "linear", "power")

#: Throughput families :func:`random_market` can draw from.
THROUGHPUT_FAMILIES: tuple[str, ...] = ("exponential", "power", "rational")


def scaled_market(
    n_types: int,
    *,
    price: float = 1.0,
    capacity: float = 1.0,
    total_demand: float = 1.0,
    alpha_span: tuple[float, float] = (1.0, 5.0),
    beta_span: tuple[float, float] = (1.0, 5.0),
    value_levels: Sequence[float] = (0.5, 1.0),
    prices: Sequence[float] | None = None,
    policy_levels: Sequence[float] = (0.0, 0.5, 1.0),
    scenario_id: str | None = None,
) -> ScenarioSpec:
    """A deterministic ``n_types``-CP market on the ``(α, β)`` lattice.

    CP ``i`` sits on a ``⌈√n⌉ × ⌈√n⌉`` grid over ``alpha_span × beta_span``
    (row-major, first ``n_types`` nodes), with profitability cycling over
    ``value_levels`` and per-CP demand scale ``total_demand / n_types`` so
    aggregate demand — and hence the congestion operating point — is
    invariant in ``n_types``. This is the stress family for the engine:
    the same scenario shape from 8 CPs to thousands.
    """
    if n_types < 1:
        raise ModelError(f"n_types must be at least 1, got {n_types}")
    if total_demand <= 0.0:
        raise ModelError(f"total_demand must be positive, got {total_demand}")
    if not value_levels:
        raise ModelError("value_levels must be non-empty")
    side = math.ceil(math.sqrt(n_types))
    alphas = np.linspace(alpha_span[0], alpha_span[1], side)
    betas = np.linspace(beta_span[0], beta_span[1], side)
    scale = total_demand / n_types
    providers = []
    for i in range(n_types):
        alpha = float(alphas[i // side])
        beta = float(betas[i % side])
        value = float(value_levels[i % len(value_levels)])
        providers.append(
            exponential_cp(
                alpha,
                beta,
                value=value,
                demand_scale=scale,
                name=f"cp{i:04d}-a{alpha:.3g}b{beta:.3g}",
            )
        )
    spec_id = scenario_id if scenario_id is not None else f"scaled-{n_types}"
    return ScenarioSpec(
        scenario_id=spec_id,
        title=f"Scaled lattice market: {n_types} exponential CP types",
        market=Market(providers, AccessISP(price=price, capacity=capacity)),
        prices=tuple(prices) if prices is not None else _GENERATOR_PRICES,
        policy_levels=tuple(policy_levels),
        metadata={
            "generator": "scaled_market",
            "n_types": n_types,
            "total_demand": total_demand,
            "alpha_span": list(alpha_span),
            "beta_span": list(beta_span),
            "value_levels": [float(v) for v in value_levels],
        },
    )


def _draw_demand(
    rng: np.random.Generator,
    family: str,
    scale: float,
    alpha_span: tuple[float, float],
) -> DemandFunction:
    alpha = float(rng.uniform(*alpha_span))
    if family == "exponential":
        return ExponentialDemand(alpha=alpha, scale=scale)
    if family == "logit":
        return LogitDemand(
            alpha=alpha, midpoint=float(rng.uniform(0.4, 1.2)), scale=scale
        )
    if family == "linear":
        # Choose the slope so the line hits zero at a price in [1.5, 3].
        slope = scale / float(rng.uniform(1.5, 3.0))
        return LinearDemand(
            base=scale, slope=slope, smoothing=min(1e-3, scale / 10.0)
        )
    if family == "power":
        return ShiftedPowerDemand(alpha=float(rng.uniform(1.0, 4.0)), scale=scale)
    raise ModelError(
        f"unknown demand family {family!r}; choose from {DEMAND_FAMILIES}"
    )


def _draw_throughput(
    rng: np.random.Generator, family: str, beta_span: tuple[float, float]
) -> ThroughputFunction:
    beta = float(rng.uniform(*beta_span))
    peak = float(rng.uniform(0.8, 1.2))
    if family == "exponential":
        return ExponentialThroughput(beta=beta, peak=peak)
    if family == "power":
        return PowerLawThroughput(beta=beta, peak=peak)
    if family == "rational":
        return RationalThroughput(beta=beta, peak=peak)
    raise ModelError(
        f"unknown throughput family {family!r}; choose from {THROUGHPUT_FAMILIES}"
    )


def random_market(
    seed: int,
    n_types: int = 8,
    *,
    families: Sequence[str] = DEMAND_FAMILIES,
    throughput_families: Sequence[str] = THROUGHPUT_FAMILIES,
    scaled_share: float = 0.25,
    value_range: tuple[float, float] = (0.0, 1.0),
    alpha_span: tuple[float, float] = (1.0, 5.0),
    beta_span: tuple[float, float] = (1.0, 5.0),
    price: float = 1.0,
    capacity: float = 1.0,
    total_demand: float = 1.0,
    prices: Sequence[float] | None = None,
    policy_levels: Sequence[float] = (0.0, 0.5, 1.0, 1.5, 2.0),
    scenario_id: str | None = None,
) -> ScenarioSpec:
    """A seeded heterogeneous CP population over all functional families.

    Every CP draws a demand family from ``families`` (with probability
    ``scaled_share`` additionally wrapped in :class:`ScaledDemand`, the
    market-share wrapper — exercising nested serialization), a throughput
    family from ``throughput_families``, parameters within the given spans
    and a profitability in ``value_range``. The construction is a pure
    function of the arguments: the same ``seed`` rebuilds the same market,
    and the seed is recorded in metadata so a round-tripped scenario keeps
    its provenance.
    """
    if n_types < 1:
        raise ModelError(f"n_types must be at least 1, got {n_types}")
    if not families:
        raise ModelError("families must be non-empty")
    if not throughput_families:
        raise ModelError("throughput_families must be non-empty")
    if not 0.0 <= scaled_share <= 1.0:
        raise ModelError(f"scaled_share must lie in [0, 1], got {scaled_share}")
    rng = np.random.default_rng(seed)
    providers = []
    for i in range(n_types):
        family = str(families[int(rng.integers(len(families)))])
        tfamily = str(
            throughput_families[int(rng.integers(len(throughput_families)))]
        )
        scale = total_demand / n_types * float(rng.uniform(0.5, 1.5))
        demand = _draw_demand(rng, family, scale, alpha_span)
        if rng.random() < scaled_share:
            demand = ScaledDemand(demand, weight=float(rng.uniform(0.3, 0.9)))
        providers.append(
            ContentProvider(
                demand=demand,
                throughput=_draw_throughput(rng, tfamily, beta_span),
                value=float(rng.uniform(*value_range)),
                name=f"cp{i:03d}-{family}-{tfamily}",
            )
        )
    spec_id = scenario_id if scenario_id is not None else f"random-{n_types}-s{seed}"
    return ScenarioSpec(
        scenario_id=spec_id,
        title=f"Random heterogeneous market: {n_types} CP types (seed {seed})",
        market=Market(providers, AccessISP(price=price, capacity=capacity)),
        prices=tuple(prices) if prices is not None else _GENERATOR_PRICES,
        policy_levels=tuple(policy_levels),
        metadata={
            "generator": "random_market",
            "seed": int(seed),
            "n_types": n_types,
            "families": [str(f) for f in families],
            "throughput_families": [str(f) for f in throughput_families],
            "scaled_share": scaled_share,
            "value_range": list(value_range),
            "total_demand": total_demand,
        },
    )


def _derived(
    base: ScenarioSpec,
    isp: AccessISP,
    *,
    scenario_id: str,
    title: str,
    extra_metadata: dict,
) -> ScenarioSpec:
    metadata = dict(base.metadata)
    metadata.update(extra_metadata)
    metadata["variant_of"] = base.scenario_id
    return ScenarioSpec(
        scenario_id=scenario_id,
        title=title,
        market=Market(base.market.providers, isp),
        prices=base.prices,
        policy_levels=base.policy_levels,
        metadata=metadata,
    )


def capacity_variant(
    base: ScenarioSpec, capacity: float, *, scenario_id: str | None = None
) -> ScenarioSpec:
    """The same scenario under a different access capacity ``µ``."""
    isp = base.market.isp.with_capacity(capacity)
    return _derived(
        base,
        isp,
        scenario_id=scenario_id
        if scenario_id is not None
        else f"{base.scenario_id}-mu{capacity:g}",
        title=f"{base.title} at capacity {capacity:g}",
        extra_metadata={"capacity": float(capacity)},
    )


def utilization_variant(
    base: ScenarioSpec,
    utilization: UtilizationFunction,
    *,
    scenario_id: str | None = None,
) -> ScenarioSpec:
    """The same scenario under a different utilization metric ``Φ``."""
    old = base.market.isp
    isp = AccessISP(
        price=old.price,
        capacity=old.capacity,
        utilization=utilization,
        name=old.name,
    )
    metric = type(utilization).__name__
    return _derived(
        base,
        isp,
        scenario_id=scenario_id
        if scenario_id is not None
        else f"{base.scenario_id}-{metric.lower()}",
        title=f"{base.title} under {metric}",
        extra_metadata={"utilization": metric},
    )


def oligopoly(
    base: ScenarioSpec,
    carriers: int,
    *,
    switching: float = 2.0,
    cap: float = 0.0,
    split_capacity: bool = True,
    iteration_mode: str = "gauss-seidel",
    scenario_id: str | None = None,
) -> ScenarioSpec:
    """An N-carrier competition scenario over ``base``'s CP population.

    The market itself is unchanged — its ISP becomes the per-carrier
    *template*: :meth:`repro.competition.OligopolyGame.from_scenario`
    replicates it ``carriers`` times, splitting the access capacity evenly
    when ``split_capacity`` holds (so total industry capacity — and hence
    the congestion operating point under equal shares — is invariant in
    ``N``, mirroring the :func:`scaled_market` invariance story on the
    carrier axis). Competition parameters (``switching`` sensitivity σ,
    subsidization ``cap`` q, the ``iteration_mode`` of the damped
    best-response iteration) are recorded as metadata alongside the
    lineage (``variant_of``), so the scenario round-trips through
    ``repro-scenario/1`` with its full provenance and the CLI's
    ``oligopoly`` verb can rebuild the exact game from the file.
    """
    if carriers < 1:
        raise ModelError(f"carriers must be at least 1, got {carriers}")
    if switching < 0.0 or not np.isfinite(switching):
        raise ModelError(
            f"switching must be finite and non-negative, got {switching}"
        )
    if cap < 0.0 or not np.isfinite(cap):
        raise ModelError(f"cap must be finite and non-negative, got {cap}")
    if iteration_mode not in ("gauss-seidel", "jacobi"):
        raise ModelError(
            f"iteration_mode must be 'gauss-seidel' or 'jacobi', "
            f"got {iteration_mode!r}"
        )
    metadata = dict(base.metadata)
    metadata.update(
        {
            "generator": "oligopoly",
            "carriers": int(carriers),
            "switching": float(switching),
            "cap": float(cap),
            "split_capacity": bool(split_capacity),
            "iteration_mode": str(iteration_mode),
            "variant_of": base.scenario_id,
        }
    )
    return ScenarioSpec(
        scenario_id=scenario_id
        if scenario_id is not None
        else f"{base.scenario_id}-oligopoly-{carriers}",
        title=f"{base.title} under {carriers}-carrier competition",
        market=base.market,
        prices=base.prices,
        policy_levels=base.policy_levels,
        metadata=metadata,
    )


def trajectory_variant(
    base: ScenarioSpec,
    *,
    scenario_id: str | None = None,
    **dynamics,
) -> ScenarioSpec:
    """A time-dynamics scenario over ``base``'s market.

    The market, axes and provenance are unchanged; a validated
    ``repro-dynamics/1`` block (see
    :class:`~repro.simulation.DynamicsSpec`) is recorded under
    ``metadata["dynamics"]`` so the ``dynamics`` sweep kind, the CLI's
    ``dynamics`` verb and a round-tripped scenario file all rebuild the
    exact trajectory. Keyword arguments override any block ``base``
    already carries, which falls back to the defaults — e.g.
    ``trajectory_variant(spec, kind="capacity", horizon=30)``.
    """
    dspec = dynamics_settings(base.metadata, overrides=dynamics)
    metadata = dict(base.metadata)
    metadata.update(
        {
            "generator": "trajectory_variant",
            "dynamics": dspec.to_metadata(),
            "variant_of": base.scenario_id,
        }
    )
    return ScenarioSpec(
        scenario_id=scenario_id
        if scenario_id is not None
        else f"{base.scenario_id}-dyn-{dspec.kind}-{dspec.horizon}",
        title=f"{base.title} over {dspec.horizon} {dspec.kind} period(s)",
        market=base.market,
        prices=base.prices,
        policy_levels=base.policy_levels,
        metadata=metadata,
    )


def shocked_market(
    base: ScenarioSpec,
    seed: int,
    *,
    n_shocks: int = 2,
    fields: Sequence[str] = ("capacity", "price"),
    scale_range: tuple[float, float] = (0.7, 1.3),
    scenario_id: str | None = None,
    **dynamics,
) -> ScenarioSpec:
    """A seeded shocked trajectory over ``base``'s market.

    Draws ``n_shocks`` multiplicative market shocks — landing step
    (distinct, within the horizon), shocked field and scale — from a
    seeded generator and records them in the scenario's
    ``repro-dynamics/1`` block. Same seed, same schedule: the seed is
    recorded in metadata and survives the scenario round trip, so a
    shocked trajectory is as pinnable as a
    :func:`random_market`. Keyword arguments configure the underlying
    trajectory exactly as in :func:`trajectory_variant`.
    """
    if n_shocks < 1:
        raise ModelError(f"n_shocks must be at least 1, got {n_shocks}")
    if not fields:
        raise ModelError("fields must be non-empty")
    if not 0.0 < scale_range[0] < scale_range[1]:
        raise ModelError(
            f"scale_range must be an increasing positive pair, "
            f"got {scale_range}"
        )
    dspec = dynamics_settings(base.metadata, overrides=dynamics)
    if n_shocks > dspec.horizon:
        raise ModelError(
            f"cannot place {n_shocks} shock(s) on distinct steps of a "
            f"{dspec.horizon}-period horizon"
        )
    rng = np.random.default_rng(seed)
    steps = rng.choice(np.arange(1, dspec.horizon + 1), size=n_shocks, replace=False)
    shocks = tuple(
        Shock(
            step=int(step),
            field=str(fields[int(rng.integers(len(fields)))]),
            scale=float(rng.uniform(*scale_range)),
        )
        for step in sorted(int(s) for s in steps)
    )
    dspec = dynamics_settings(
        base.metadata, overrides={**dynamics, "shocks": shocks}
    )
    metadata = dict(base.metadata)
    metadata.update(
        {
            "generator": "shocked_market",
            "seed": int(seed),
            "dynamics": dspec.to_metadata(),
            "variant_of": base.scenario_id,
        }
    )
    return ScenarioSpec(
        scenario_id=scenario_id
        if scenario_id is not None
        else f"{base.scenario_id}-shocked-s{seed}",
        title=f"{base.title} under {len(shocks)} seeded shock(s)",
        market=base.market,
        prices=base.prices,
        policy_levels=base.policy_levels,
        metadata=metadata,
    )


register_scenario(
    "scaled-64",
    lambda: scaled_market(
        64,
        prices=tuple(float(x) for x in np.round(np.linspace(0.0, 2.0, 9), 10)),
        policy_levels=(0.0, 0.5, 1.0),
        scenario_id="scaled-64",
    ),
    summary="64-CP lattice stress market (full subsidization grid)",
)
register_scenario(
    "scaled-256",
    lambda: scaled_market(
        256,
        prices=tuple(float(x) for x in np.round(np.linspace(0.0, 2.0, 9), 10)),
        policy_levels=(0.0, 1.0),
        scenario_id="scaled-256",
    ),
    summary="256-CP lattice stress market (regulated + q=1 rows)",
)
register_scenario(
    "scaled-1024",
    lambda: scaled_market(
        1024,
        prices=tuple(float(x) for x in np.round(np.linspace(0.0, 2.0, 9), 10)),
        policy_levels=(0.0,),
        scenario_id="scaled-1024",
    ),
    summary="1024-CP lattice stress market (regulated price sweep)",
)
register_scenario(
    "random-12",
    lambda: random_market(
        2014,
        12,
        policy_levels=(0.0, 1.0, 2.0),
        scenario_id="random-12",
    ),
    summary="12-CP seeded heterogeneous market over all families",
)


def _oligopoly4() -> ScenarioSpec:
    # Lazy import: repro.scenarios.paper loads after this module in the
    # package __init__, and reaches back through repro.experiments.
    from repro.scenarios.paper import section5_scenario

    return oligopoly(
        section5_scenario(), 4, cap=0.5, scenario_id="oligopoly-4"
    )


register_scenario(
    "oligopoly-4",
    _oligopoly4,
    summary="4-carrier oligopoly on the §5 market (capacity split evenly)",
)


def _dynamics20() -> ScenarioSpec:
    # Lazy import: repro.scenarios.paper loads after this module in the
    # package __init__, and reaches back through repro.experiments.
    from repro.scenarios.paper import section5_scenario

    return trajectory_variant(
        section5_scenario(),
        kind="capacity",
        horizon=20,
        segment_length=5,
        cap=1.0,
        reinvestment_rate=0.25,
        scenario_id="dynamics-20",
    )


register_scenario(
    "dynamics-20",
    _dynamics20,
    summary="20-period capacity-expansion trajectory on the §5 market (q=1)",
)
