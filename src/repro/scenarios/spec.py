"""The declarative scenario recipe: market + sweep axes + provenance.

A :class:`ScenarioSpec` is everything an experiment needs to run that is
*data* rather than *code*: the market (providers + ISP), the price grid,
the policy levels, and free-form metadata recording where the scenario came
from (paper section, generator name and seed, variant lineage). Specs are
frozen, registry-addressable (:mod:`repro.scenarios.registry`) and
round-trip to JSON as the ``repro-scenario/1`` format (:mod:`repro.io`),
so a generated thousand-CP stress market is as shareable and pinnable as
the paper's hand-built eight-type instance.

Example — a minimal spec with explicit axes and provenance:

>>> from repro.providers import AccessISP, Market, exponential_cp
>>> from repro.scenarios.spec import ScenarioSpec
>>> spec = ScenarioSpec(
...     scenario_id="docs-tiny",
...     title="one CP type on a unit link",
...     market=Market([exponential_cp(2.0, 2.0, value=1.0)],
...                   AccessISP(price=1.0, capacity=1.0)),
...     prices=(0.5, 1.0),
...     policy_levels=(0.0,),
...     metadata={"source": "docstring example"},
... )
>>> spec.size, spec.prices
(1, (0.5, 1.0))
>>> spec.metadata["source"]
'docstring example'
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Mapping

import numpy as np

from repro.exceptions import ModelError
from repro.providers.market import Market

__all__ = ["DEFAULT_PRICES", "DEFAULT_POLICY_LEVELS", "ScenarioSpec"]

#: Default price axis for scenarios that do not pick their own: the paper's
#: ``p ∈ [0, 2]`` figure grid at 41 points.
DEFAULT_PRICES: tuple[float, ...] = tuple(
    float(x) for x in np.round(np.linspace(0.0, 2.0, 41), 10)
)

#: Default policy levels: the paper's five caps of Figures 7–11.
DEFAULT_POLICY_LEVELS: tuple[float, ...] = (0.0, 0.5, 1.0, 1.5, 2.0)


def _as_axis(values, label: str) -> tuple[float, ...]:
    axis = tuple(float(v) for v in values)
    if not axis:
        raise ModelError(f"scenario {label} must be non-empty")
    arr = np.asarray(axis)
    if not np.all(np.isfinite(arr)) or np.any(arr < 0.0):
        raise ModelError(f"scenario {label} must be finite and non-negative")
    if np.any(np.diff(arr) <= 0.0):
        raise ModelError(f"scenario {label} must be strictly increasing")
    return axis


@dataclass(frozen=True)
class ScenarioSpec:
    """A fully-specified experiment scenario.

    Attributes
    ----------
    scenario_id:
        Registry/CLI handle, e.g. ``"section5"`` or ``"scaled-256"``.
    title:
        One-line human description.
    market:
        The market recipe at its reference price (sweeps re-price it).
    prices:
        Price axis the scenario is meant to be swept over.
    policy_levels:
        Policy caps ``q`` of the scenario's grid.
    metadata:
        JSON-ready provenance: paper section, generator name and seed,
        variant lineage, ... Read-only after construction.
    """

    scenario_id: str
    title: str
    market: Market
    prices: tuple[float, ...] = DEFAULT_PRICES
    policy_levels: tuple[float, ...] = DEFAULT_POLICY_LEVELS
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.scenario_id or not self.scenario_id.strip():
            raise ModelError("scenario_id must be a non-empty string")
        if any(ch.isspace() for ch in self.scenario_id):
            raise ModelError(
                f"scenario_id must not contain whitespace, got {self.scenario_id!r}"
            )
        object.__setattr__(self, "prices", _as_axis(self.prices, "prices"))
        object.__setattr__(
            self, "policy_levels", _as_axis(self.policy_levels, "policy_levels")
        )
        object.__setattr__(self, "metadata", MappingProxyType(dict(self.metadata)))

    @property
    def size(self) -> int:
        """Number of CPs in the market."""
        return self.market.size

    def price_array(self) -> np.ndarray:
        """The price axis as a float ndarray."""
        return np.asarray(self.prices, dtype=float)

    def policy_array(self) -> np.ndarray:
        """The policy levels as a float ndarray."""
        return np.asarray(self.policy_levels, dtype=float)

    def family_counts(self) -> dict[str, int]:
        """Demand/throughput family composition, e.g. ``{"ExponentialDemand": 9}``."""
        counts: dict[str, int] = {}
        for cp in self.market.providers:
            for func in (cp.demand, cp.throughput):
                name = type(func).__name__
                counts[name] = counts.get(name, 0) + 1
        return counts

    def describe(self) -> str:
        """Multi-line human summary (the CLI's ``describe`` verb)."""
        isp = self.market.isp
        prices = self.price_array()
        lines = [
            f"scenario {self.scenario_id}: {self.title}",
            f"  providers: {self.size} CP type(s)",
            "  families:  "
            + ", ".join(
                f"{name} x{n}" for name, n in sorted(self.family_counts().items())
            ),
            f"  isp:       price={isp.price:g} capacity={isp.capacity:g} "
            f"utilization={type(isp.utilization).__name__}",
            f"  prices:    {prices.size} points in [{prices[0]:g}, {prices[-1]:g}]",
            "  policies:  q in {" + ", ".join(f"{q:g}" for q in self.policy_levels) + "}",
        ]
        for key in sorted(self.metadata):
            lines.append(f"  meta:      {key} = {self.metadata[key]!r}")
        return "\n".join(lines)
