"""Declarative scenario library: specs, registry, paper instances, generators.

The scenario layer separates *what market to run* from *how to run it*.
A :class:`~repro.scenarios.spec.ScenarioSpec` bundles a market recipe with
its sweep axes and provenance metadata; the registry makes scenarios
addressable by name from the CLI and the experiment pipeline; the paper's
two hand-built markets and a family of generated instances (scaled
lattices, seeded random populations, capacity/utilization variants) are
registered on import. :mod:`repro.io` round-trips any spec — including
generated ones, seed recorded — through the ``repro-scenario/1`` JSON
format.
"""

from repro.scenarios.generators import (
    DEMAND_FAMILIES,
    THROUGHPUT_FAMILIES,
    capacity_variant,
    oligopoly,
    random_market,
    scaled_market,
    shocked_market,
    trajectory_variant,
    utilization_variant,
)
from repro.scenarios.paper import section3_scenario, section5_scenario
from repro.scenarios.registry import (
    get_scenario,
    is_registered,
    register_scenario,
    scenario_ids,
    scenario_summary,
)
from repro.scenarios.spec import (
    DEFAULT_POLICY_LEVELS,
    DEFAULT_PRICES,
    ScenarioSpec,
)

__all__ = [
    "DEFAULT_POLICY_LEVELS",
    "DEFAULT_PRICES",
    "DEMAND_FAMILIES",
    "THROUGHPUT_FAMILIES",
    "ScenarioSpec",
    "capacity_variant",
    "get_scenario",
    "is_registered",
    "oligopoly",
    "random_market",
    "register_scenario",
    "scaled_market",
    "scenario_ids",
    "scenario_summary",
    "section3_scenario",
    "section5_scenario",
    "shocked_market",
    "trajectory_variant",
    "utilization_variant",
]
