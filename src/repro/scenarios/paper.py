"""The paper's two numerical scenarios, re-expressed as declarative specs.

The market builders themselves live in :mod:`repro.experiments.scenarios`
(the module the original figure scripts were written against); here they
are wrapped into registry-addressable :class:`~repro.scenarios.spec.ScenarioSpec`
objects so the spec-driven pipeline, the CLI and the JSON format all speak
about "section3" and "section5" by name.
"""

from __future__ import annotations

from repro.experiments.scenarios import (
    FIGURE_PRICE_GRID,
    POLICY_LEVELS,
    section3_market,
    section5_market,
)
from repro.scenarios.registry import register_scenario
from repro.scenarios.spec import ScenarioSpec

__all__ = ["section3_scenario", "section5_scenario"]


def section3_scenario() -> ScenarioSpec:
    """The §3.2 one-sided-pricing market of Figures 4–5 (9 CP types)."""
    return ScenarioSpec(
        scenario_id="section3",
        title="§3.2 one-sided pricing market (9 exponential CP types)",
        market=section3_market(),
        prices=tuple(float(p) for p in FIGURE_PRICE_GRID),
        policy_levels=(0.0,),
        metadata={
            "source": "Ma, CoNEXT 2014, §3.2",
            "figures": ["fig4", "fig5"],
            "alphas": [1.0, 3.0, 5.0],
            "betas": [1.0, 3.0, 5.0],
        },
    )


def section5_scenario() -> ScenarioSpec:
    """The §5 subsidization market of Figures 7–11 (8 CP types)."""
    return ScenarioSpec(
        scenario_id="section5",
        title="§5 subsidization market (8 exponential CP types)",
        market=section5_market(),
        prices=tuple(float(p) for p in FIGURE_PRICE_GRID),
        policy_levels=POLICY_LEVELS,
        metadata={
            "source": "Ma, CoNEXT 2014, §5",
            "figures": ["fig7", "fig8", "fig9", "fig10", "fig11"],
            "alphas": [2.0, 5.0],
            "betas": [2.0, 5.0],
            "values": [0.5, 1.0],
        },
    )


register_scenario(
    "section3",
    section3_scenario,
    summary="§3.2 one-sided pricing market (9 CP types; figs 4-5)",
)
register_scenario(
    "section5",
    section5_scenario,
    summary="§5 subsidization market (8 CP types; figs 7-11)",
)
