"""Name → scenario registry behind the CLI and the experiment pipeline.

Scenarios register *factories*, not built specs, so importing the library
never pays for a thousand-CP market nobody asked for; :func:`get_scenario`
builds on first access and caches. The registry is explicit — only
registered ids resolve — which keeps the CLI's name space enumerable.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "register_scenario",
    "get_scenario",
    "is_registered",
    "scenario_ids",
    "scenario_summary",
]

_FACTORIES: dict[str, tuple[Callable[[], ScenarioSpec], str]] = {}
_CACHE: dict[str, ScenarioSpec] = {}
_LOCK = threading.Lock()


def register_scenario(
    scenario_id: str, factory: Callable[[], ScenarioSpec], *, summary: str
) -> None:
    """Register a scenario factory under ``scenario_id``.

    ``summary`` is the one-liner shown by the CLI's ``list`` verb without
    building the scenario. Re-registering an id raises ``ValueError``.
    """
    with _LOCK:
        if scenario_id in _FACTORIES:
            raise ValueError(f"scenario {scenario_id!r} is already registered")
        _FACTORIES[scenario_id] = (factory, summary)


def is_registered(scenario_id: str) -> bool:
    """Whether an id resolves in the registry."""
    return scenario_id in _FACTORIES


def scenario_ids() -> list[str]:
    """All registered ids, sorted."""
    return sorted(_FACTORIES)


def scenario_summary(scenario_id: str) -> str:
    """The registration one-liner for an id (without building the spec)."""
    return _FACTORIES[scenario_id][1]


def get_scenario(scenario_id: str) -> ScenarioSpec:
    """Build (once) and return the scenario registered under an id.

    Raises ``KeyError`` listing the registered ids for unknown names.
    """
    if scenario_id not in _FACTORIES:
        raise KeyError(
            f"unknown scenario {scenario_id!r}; registered scenarios: "
            f"{scenario_ids()}"
        )
    with _LOCK:
        cached = _CACHE.get(scenario_id)
    if cached is not None:
        return cached
    spec = _FACTORIES[scenario_id][0]()
    if spec.scenario_id != scenario_id:
        raise ValueError(
            f"factory registered as {scenario_id!r} built a spec named "
            f"{spec.scenario_id!r}"
        )
    with _LOCK:
        _CACHE.setdefault(scenario_id, spec)
    return spec
