"""Unit tests for repro.core.uniqueness — Theorem 4 / Corollary 1 conditions."""

import numpy as np
import pytest

from repro.core.equilibrium import solve_equilibrium
from repro.core.game import SubsidizationGame
from repro.core.uniqueness import (
    is_off_diagonally_monotone,
    jacobian_p_matrix_margin,
    marginal_utility_jacobian,
    p_function_violations,
)


class TestPFunctionSampling:
    def test_no_violations_on_paper_family(self, four_cp_market):
        game = SubsidizationGame(four_cp_market, 1.0)
        assert p_function_violations(game, samples=12, seed=3) == []

    def test_zero_cap_trivially_clean(self, two_cp_market):
        game = SubsidizationGame(two_cp_market, 0.0)
        assert p_function_violations(game) == []

    def test_deterministic_given_seed(self, two_cp_market):
        game = SubsidizationGame(two_cp_market, 1.0)
        a = p_function_violations(game, samples=8, seed=11)
        b = p_function_violations(game, samples=8, seed=11)
        assert len(a) == len(b)


class TestJacobian:
    def test_diagonal_is_negative(self, four_cp_market):
        # Own-strategy concavity: du_i/ds_i < 0.
        game = SubsidizationGame(four_cp_market, 1.0)
        eq = solve_equilibrium(game)
        jac = marginal_utility_jacobian(game, eq.subsidies)
        assert np.all(np.diag(jac) < 0.0)

    def test_p_matrix_margin_positive_at_equilibrium(self, four_cp_market):
        # The differential form of condition (10) holds on the paper family.
        game = SubsidizationGame(four_cp_market, 1.0)
        eq = solve_equilibrium(game)
        assert jacobian_p_matrix_margin(game, eq.subsidies) > 0.0

    def test_probes_stay_feasible_at_boundary(self, two_cp_market):
        # A CP at s = 0 must not cause probes below zero (would raise).
        zeroed = two_cp_market.with_provider(
            1, two_cp_market.providers[1].with_value(0.0)
        )
        game = SubsidizationGame(zeroed, 1.0)
        eq = solve_equilibrium(game)
        assert eq.subsidies[1] == 0.0
        jac = marginal_utility_jacobian(game, eq.subsidies)
        assert jac.shape == (2, 2)


class TestOffDiagonalMonotonicity:
    def test_holds_on_a_mild_two_cp_scenario(self):
        # Leontief condition of Corollary 1: rivals' subsidies raise my
        # marginal benefit of subsidizing. Holds for mildly heterogeneous
        # CPs at moderate prices.
        from repro.providers import AccessISP, Market, exponential_cp

        market = Market(
            [
                exponential_cp(1.0, 2.0, value=1.0),
                exponential_cp(2.0, 1.0, value=0.8),
            ],
            AccessISP(price=1.5, capacity=1.0),
        )
        game = SubsidizationGame(market, 0.3)
        eq = solve_equilibrium(game)
        assert is_off_diagonally_monotone(game, eq.subsidies, tol=1e-6)

    def test_can_fail_at_tight_caps_on_the_section5_family(self, four_cp_market):
        # The condition is sufficient, not necessary: at q = 0.2 with all
        # CPs pinned at the cap, some cross-derivatives go (slightly)
        # negative — yet ds/dq >= 0 still holds empirically (see the
        # dynamics tests). Documented in EXPERIMENTS.md.
        game = SubsidizationGame(four_cp_market, 0.2)
        eq = solve_equilibrium(game)
        assert not is_off_diagonally_monotone(game, eq.subsidies, tol=1e-9)
