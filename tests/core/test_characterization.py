"""Unit tests for repro.core.characterization — Theorem 3."""

import numpy as np
import pytest

from repro.core.characterization import (
    classify_providers,
    is_equilibrium,
    kkt_residual,
    thresholds,
)
from repro.core.equilibrium import solve_equilibrium
from repro.core.game import SubsidizationGame


class TestThresholds:
    def test_equilibrium_satisfies_threshold_equation(self, four_cp_market):
        # Theorem 3: s_i = min(tau_i(s), q) at every equilibrium.
        game = SubsidizationGame(four_cp_market, 0.35)
        eq = solve_equilibrium(game)
        tau = thresholds(game, eq.subsidies)
        implied = np.minimum(tau, game.cap)
        np.testing.assert_allclose(eq.subsidies, implied, atol=1e-7)

    def test_threshold_signals_desire_to_move(self, four_cp_market):
        game = SubsidizationGame(four_cp_market, 1.0)
        eq = solve_equilibrium(game)
        # Perturb one interior CP downward: its threshold must now exceed
        # its subsidy (it wants to move back up).
        s = eq.subsidies.copy()
        interior = [i for i in range(4) if 1e-6 < s[i] < 1.0 - 1e-6]
        assert interior, "test scenario must have an interior CP"
        i = interior[0]
        s[i] *= 0.5
        tau = thresholds(game, s)
        assert tau[i] > s[i]

    def test_zero_subsidy_has_zero_threshold(self, two_cp_market):
        game = SubsidizationGame(two_cp_market, 1.0)
        tau = thresholds(game, np.zeros(2))
        np.testing.assert_allclose(tau, 0.0, atol=1e-12)


class TestKktResidual:
    def test_zero_at_equilibrium(self, four_cp_market):
        game = SubsidizationGame(four_cp_market, 1.0)
        eq = solve_equilibrium(game)
        assert kkt_residual(game, eq.subsidies) < 1e-8

    def test_positive_off_equilibrium(self, four_cp_market):
        game = SubsidizationGame(four_cp_market, 1.0)
        assert kkt_residual(game, np.zeros(4)) > 1e-3

    def test_is_equilibrium_wrapper(self, four_cp_market):
        game = SubsidizationGame(four_cp_market, 1.0)
        eq = solve_equilibrium(game)
        assert is_equilibrium(game, eq.subsidies)
        assert not is_equilibrium(game, np.zeros(4))

    def test_is_equilibrium_rejects_infeasible(self, four_cp_market):
        game = SubsidizationGame(four_cp_market, 1.0)
        assert not is_equilibrium(game, np.full(4, 2.0))


class TestClassification:
    def test_partition_is_exhaustive_and_disjoint(self, four_cp_market):
        game = SubsidizationGame(four_cp_market, 0.35)
        eq = solve_equilibrium(game)
        partition = classify_providers(game, eq.subsidies)
        all_indices = sorted(
            partition.zero + partition.capped + partition.interior
        )
        assert all_indices == [0, 1, 2, 3]

    def test_capped_cp_detected_under_tight_policy(self, four_cp_market):
        game = SubsidizationGame(four_cp_market, 0.05)
        eq = solve_equilibrium(game)
        partition = classify_providers(game, eq.subsidies)
        assert partition.capped  # at q = 0.05 every valuable CP hits the cap

    def test_zero_value_cp_classified_as_zero(self, two_cp_market):
        zeroed = two_cp_market.with_provider(
            1, two_cp_market.providers[1].with_value(0.0)
        )
        game = SubsidizationGame(zeroed, 1.0)
        eq = solve_equilibrium(game)
        partition = classify_providers(game, eq.subsidies)
        assert 1 in partition.zero

    def test_q_zero_resolves_overlap_to_zero_set(self, two_cp_market):
        game = SubsidizationGame(two_cp_market, 0.0)
        partition = classify_providers(game, np.zeros(2))
        assert partition.zero == (0, 1)
        assert not partition.capped
