"""Unit tests for repro.core.regulation — price caps and viability floors."""

import numpy as np
import pytest

from repro.core.regulation import (
    constrained_welfare_optimal_price,
    price_cap_analysis,
)
from repro.core.revenue import optimal_price
from repro.exceptions import ModelError


class TestConstrainedWelfareOptimum:
    def test_picks_lowest_viable_price(self, four_cp_market):
        # Welfare falls with price, so the optimum sits where the revenue
        # floor binds (on the rising side of the revenue curve).
        floor = 0.15
        outcome = constrained_welfare_optimal_price(
            four_cp_market, cap=0.5, min_revenue=floor, price_range=(0.0, 2.0)
        )
        assert outcome.revenue >= floor - 1e-6
        assert outcome.binding

    def test_welfare_dominates_monopoly_outcome(self, four_cp_market):
        monopoly = optimal_price(four_cp_market, cap=0.5, price_range=(0.0, 2.0))
        regulated = constrained_welfare_optimal_price(
            four_cp_market,
            cap=0.5,
            min_revenue=0.6 * monopoly.revenue,
            price_range=(0.0, 2.0),
        )
        assert regulated.price < monopoly.price
        assert regulated.welfare > monopoly.equilibrium.state.welfare

    def test_tighter_floor_forces_higher_price(self, four_cp_market):
        loose = constrained_welfare_optimal_price(
            four_cp_market, cap=0.5, min_revenue=0.1, price_range=(0.0, 2.0)
        )
        tight = constrained_welfare_optimal_price(
            four_cp_market, cap=0.5, min_revenue=0.25, price_range=(0.0, 2.0)
        )
        assert tight.price >= loose.price
        assert tight.welfare <= loose.welfare + 1e-9

    def test_infeasible_floor_raises(self, four_cp_market):
        with pytest.raises(ModelError):
            constrained_welfare_optimal_price(
                four_cp_market, cap=0.5, min_revenue=100.0, price_range=(0.0, 2.0)
            )

    def test_validates_inputs(self, four_cp_market):
        with pytest.raises(ModelError):
            constrained_welfare_optimal_price(
                four_cp_market, cap=0.5, min_revenue=-1.0
            )
        with pytest.raises(ModelError):
            constrained_welfare_optimal_price(
                four_cp_market, cap=0.5, min_revenue=0.1, price_range=(2.0, 1.0)
            )


class TestPriceCapAnalysis:
    def test_loose_cap_reproduces_monopoly(self, four_cp_market):
        monopoly = optimal_price(four_cp_market, cap=0.5, price_range=(0.0, 2.0))
        outcomes = price_cap_analysis(
            four_cp_market, cap=0.5, price_caps=[10.0], price_range=(0.0, 2.0)
        )
        assert not outcomes[0].binding
        assert outcomes[0].price == pytest.approx(monopoly.price, abs=1e-6)

    def test_binding_cap_moves_price_to_the_cap(self, four_cp_market):
        monopoly = optimal_price(four_cp_market, cap=0.5, price_range=(0.0, 2.0))
        p_bar = 0.5 * monopoly.price
        outcomes = price_cap_analysis(
            four_cp_market, cap=0.5, price_caps=[p_bar], price_range=(0.0, 2.0)
        )
        assert outcomes[0].binding
        # Revenue rises toward its peak, so the constrained ISP prices at
        # the cap itself.
        assert outcomes[0].price == pytest.approx(p_bar, abs=1e-4)

    def test_binding_caps_raise_welfare(self, four_cp_market):
        monopoly = optimal_price(four_cp_market, cap=0.5, price_range=(0.0, 2.0))
        outcomes = price_cap_analysis(
            four_cp_market,
            cap=0.5,
            price_caps=[0.5 * monopoly.price, 10.0],
            price_range=(0.0, 2.0),
        )
        capped, free = outcomes
        assert capped.welfare > free.welfare
        assert capped.revenue <= free.revenue + 1e-9

    def test_rejects_non_positive_caps(self, four_cp_market):
        with pytest.raises(ModelError):
            price_cap_analysis(four_cp_market, cap=0.5, price_caps=[0.0])
