"""Unit tests for repro.core.best_response."""

import numpy as np
import pytest

from repro.core.best_response import best_response, best_response_profile
from repro.core.game import SubsidizationGame


class TestBestResponse:
    def test_zero_value_cp_never_subsidizes(self, two_cp_market):
        zeroed = two_cp_market.with_provider(
            0, two_cp_market.providers[0].with_value(0.0)
        )
        game = SubsidizationGame(zeroed, 1.0)
        assert best_response(game, 0, np.zeros(2)) == 0.0

    def test_response_is_within_bounds(self, four_cp_market):
        game = SubsidizationGame(four_cp_market, 0.3)
        for i in range(4):
            response = best_response(game, i, np.full(4, 0.1))
            assert 0.0 <= response <= 0.3

    def test_response_never_exceeds_profitability(self, four_cp_market):
        game = SubsidizationGame(four_cp_market, 5.0)
        for i, cp in enumerate(four_cp_market.providers):
            response = best_response(game, i, np.zeros(4))
            assert response <= cp.value + 1e-12

    def test_response_is_a_local_optimum(self, four_cp_market):
        game = SubsidizationGame(four_cp_market, 1.0)
        profile = np.array([0.1, 0.2, 0.3, 0.1])
        i = 0
        response = best_response(game, i, profile)
        trial = profile.copy()
        trial[i] = response
        best_value = game.utility(i, trial)
        for delta in (-0.01, 0.01):
            candidate = np.clip(response + delta, 0.0, 1.0)
            trial[i] = candidate
            assert game.utility(i, trial) <= best_value + 1e-12

    def test_beats_grid_search(self, two_cp_market):
        game = SubsidizationGame(two_cp_market, 1.0)
        profile = np.array([0.0, 0.1])
        response = best_response(game, 0, profile)
        trial = profile.copy()
        trial[0] = response
        best_value = game.utility(0, trial)
        for si in np.linspace(0.0, 1.0, 201):
            trial[0] = si
            assert game.utility(0, trial) <= best_value + 1e-10

    def test_root_and_maximize_methods_agree(self, four_cp_market):
        game = SubsidizationGame(four_cp_market, 1.0)
        profile = np.array([0.2, 0.1, 0.0, 0.25])
        for i in range(4):
            via_root = best_response(game, i, profile, method="root")
            via_max = best_response(game, i, profile, method="maximize")
            assert via_root == pytest.approx(via_max, abs=1e-6)

    def test_cap_binds_when_value_is_high(self, two_cp_market):
        # With a tiny cap the profitable CP wants the corner.
        game = SubsidizationGame(two_cp_market, 0.05)
        assert best_response(game, 0, np.zeros(2)) == pytest.approx(0.05)

    def test_rejects_unknown_method(self, two_cp_market):
        game = SubsidizationGame(two_cp_market, 1.0)
        with pytest.raises(ValueError):
            best_response(game, 0, np.zeros(2), method="newton")

    def test_ignores_own_entry_in_profile(self, two_cp_market):
        game = SubsidizationGame(two_cp_market, 1.0)
        a = best_response(game, 0, np.array([0.0, 0.2]))
        b = best_response(game, 0, np.array([0.9, 0.2]))
        assert a == pytest.approx(b, abs=1e-10)


class TestBestResponseProfile:
    def test_shape_and_bounds(self, four_cp_market):
        game = SubsidizationGame(four_cp_market, 0.5)
        profile = best_response_profile(game, np.zeros(4))
        assert profile.shape == (4,)
        assert np.all(profile >= 0.0) and np.all(profile <= 0.5)

    def test_jacobi_semantics(self, four_cp_market):
        # All components respond to the SAME input profile.
        game = SubsidizationGame(four_cp_market, 1.0)
        s = np.array([0.1, 0.3, 0.2, 0.0])
        profile = best_response_profile(game, s)
        for i in range(4):
            assert profile[i] == pytest.approx(
                best_response(game, i, s), abs=1e-12
            )
