"""Unit tests for repro.core.revenue — Theorem 7 and ISP pricing."""

import numpy as np
import pytest

from repro.core.equilibrium import solve_equilibrium
from repro.core.game import SubsidizationGame
from repro.core.revenue import (
    marginal_revenue_decomposition,
    marginal_revenue_one_sided,
    optimal_price,
    revenue_curve,
)


class TestOneSidedMarginalRevenue:
    def test_matches_finite_difference(self, four_cp_market):
        result = marginal_revenue_one_sided(four_cp_market)
        h = 1e-6
        hi = four_cp_market.with_price(1.0 + h).solve().revenue
        lo = four_cp_market.with_price(1.0 - h).solve().revenue
        fd = (hi - lo) / (2.0 * h)
        assert result.total == pytest.approx(fd, rel=1e-5)

    def test_direct_term_is_aggregate_throughput(self, four_cp_market):
        result = marginal_revenue_one_sided(four_cp_market)
        assert result.direct_term == pytest.approx(
            four_cp_market.solve().aggregate_throughput
        )

    def test_upsilon_below_one_under_congestion(self, four_cp_market):
        # Upsilon = 1 + sum eps^lambda_m < 1 because each eps is negative.
        result = marginal_revenue_one_sided(four_cp_market)
        assert 0.0 < result.upsilon < 1.0

    def test_demand_term_non_positive_at_positive_price(self, four_cp_market):
        result = marginal_revenue_one_sided(four_cp_market)
        assert result.demand_term <= 0.0


class TestEquilibriumMarginalRevenue:
    def test_matches_finite_difference_of_equilibrium_revenue(
        self, four_cp_market
    ):
        game = SubsidizationGame(four_cp_market, 1.0)
        eq = solve_equilibrium(game)
        decomposition = marginal_revenue_decomposition(game, eq.subsidies)
        h = 1e-5

        def revenue_at(p):
            return solve_equilibrium(
                game.with_price(p), initial=eq.subsidies
            ).state.revenue

        fd = (revenue_at(1.0 + h) - revenue_at(1.0 - h)) / (2.0 * h)
        assert decomposition.total == pytest.approx(fd, rel=1e-3)

    def test_subsidy_feedback_changes_elasticities(self, four_cp_market):
        game = SubsidizationGame(four_cp_market, 1.0)
        eq = solve_equilibrium(game)
        with_feedback = marginal_revenue_decomposition(game, eq.subsidies)
        # Forcing ds/dp = 0 must give a different demand term whenever some
        # CP's subsidy actually responds to the price.
        from repro.core.dynamics import equilibrium_sensitivity

        sens = equilibrium_sensitivity(game, eq.subsidies)
        assert np.any(np.abs(sens.ds_dp) > 1e-6)
        frozen = marginal_revenue_decomposition(
            game,
            eq.subsidies,
            sensitivity=type(sens)(
                ds_dq=sens.ds_dq,
                ds_dp=np.zeros_like(sens.ds_dp),
                partition=sens.partition,
                interior_jacobian=sens.interior_jacobian,
            ),
        )
        assert frozen.demand_term != pytest.approx(
            with_feedback.demand_term, rel=1e-6
        )


class TestRevenueCurve:
    def test_returns_one_result_per_price(self, two_cp_market):
        prices = [0.2, 0.6, 1.0]
        results = revenue_curve(two_cp_market, prices, cap=0.5)
        assert len(results) == 3
        for result in results:
            assert result.kkt_residual < 1e-7

    def test_zero_cap_matches_one_sided_solve(self, two_cp_market):
        results = revenue_curve(two_cp_market, [0.8], cap=0.0)
        assert results[0].state.revenue == pytest.approx(
            two_cp_market.with_price(0.8).solve().revenue
        )

    def test_deregulated_revenue_dominates_baseline(self, four_cp_market):
        prices = np.linspace(0.2, 1.6, 8)
        base = [r.state.revenue for r in revenue_curve(four_cp_market, prices, cap=0.0)]
        dereg = [
            r.state.revenue for r in revenue_curve(four_cp_market, prices, cap=1.0)
        ]
        assert all(d >= b - 1e-9 for b, d in zip(base, dereg))


class TestOptimalPrice:
    def test_finds_interior_peak(self, four_cp_market):
        best = optimal_price(four_cp_market, cap=0.0, price_range=(0.0, 3.0))
        assert 0.0 < best.price < 3.0
        # No grid price does better.
        for p in np.linspace(0.05, 2.95, 30):
            assert (
                four_cp_market.with_price(float(p)).solve().revenue
                <= best.revenue + 1e-9
            )

    def test_deregulation_weakly_raises_optimal_revenue(self, four_cp_market):
        regulated = optimal_price(four_cp_market, cap=0.0, price_range=(0.0, 3.0))
        deregulated = optimal_price(four_cp_market, cap=1.0, price_range=(0.0, 3.0))
        assert deregulated.revenue >= regulated.revenue - 1e-9
