"""The vectorized Jacobi/Newton sweep versus the scalar Gauss–Seidel path."""

import numpy as np
import pytest

from repro.core.best_response import (
    best_response_profile,
    best_response_profile_vectorized,
)
from repro.core.equilibrium import (
    solve_equilibrium,
    solve_equilibrium_best_response,
)
from repro.core.game import SubsidizationGame


class TestVectorizedBestResponses:
    def test_matches_scalar_profile_map(self, four_cp_market):
        game = SubsidizationGame(four_cp_market, 1.0)
        rng = np.random.default_rng(21)
        for _ in range(5):
            s = rng.uniform(0.0, 1.0, size=game.size)
            vector = best_response_profile_vectorized(game, s)
            scalar = best_response_profile(game, s)
            np.testing.assert_allclose(vector, scalar, atol=1e-9)

    def test_zero_cap_all_zero(self, four_cp_market):
        game = SubsidizationGame(four_cp_market, 0.0)
        out = best_response_profile_vectorized(game, np.zeros(game.size))
        np.testing.assert_array_equal(out, 0.0)

    def test_corner_pinning_at_generous_cap(self, two_cp_market):
        # With cap far above every profitability, responses cap at v_i or
        # the interior root — never above the margin.
        game = SubsidizationGame(two_cp_market, 10.0)
        values = game.market.values
        out = best_response_profile_vectorized(game, np.zeros(game.size))
        assert np.all(out <= values + 1e-12)


class TestSweepModes:
    def test_vector_and_scalar_agree(self, four_cp_market):
        game = SubsidizationGame(four_cp_market, 1.0)
        vector = solve_equilibrium_best_response(game, sweep="vector")
        scalar = solve_equilibrium_best_response(game, sweep="scalar")
        np.testing.assert_allclose(
            vector.subsidies, scalar.subsidies, atol=1e-8
        )
        assert vector.kkt_residual <= 1e-10
        assert scalar.kkt_residual <= 1e-8

    def test_auto_produces_certified_equilibrium(self, four_cp_market):
        game = SubsidizationGame(four_cp_market, 0.7)
        result = solve_equilibrium_best_response(game)
        assert result.kkt_residual <= 1e-9

    def test_unknown_sweep_rejected(self, two_cp_market):
        game = SubsidizationGame(two_cp_market, 1.0)
        with pytest.raises(ValueError):
            solve_equilibrium_best_response(game, sweep="warp")

    def test_vector_warm_start_fast_path(self, four_cp_market):
        game = SubsidizationGame(four_cp_market, 1.0)
        cold = solve_equilibrium_best_response(game, sweep="vector")
        warm = solve_equilibrium_best_response(
            game, sweep="vector", initial=cold.subsidies
        )
        assert warm.iterations <= cold.iterations
        np.testing.assert_allclose(warm.subsidies, cold.subsidies, atol=1e-9)


class TestZeroCapShortCircuit:
    def test_result_subsidies_are_caller_owned(self, two_cp_market):
        # The q = 0 early return must hand out a private array: mutating it
        # must affect neither the embedded state nor later solves.
        game = SubsidizationGame(two_cp_market, 0.0)
        first = solve_equilibrium_best_response(game)
        first.subsidies[:] = 99.0
        np.testing.assert_array_equal(first.state.subsidies, 0.0)
        second = solve_equilibrium_best_response(game)
        np.testing.assert_array_equal(second.subsidies, 0.0)

    def test_vi_solver_shares_the_short_circuit(self, two_cp_market):
        from repro.core.equilibrium import solve_equilibrium_vi

        game = SubsidizationGame(two_cp_market, 0.0)
        result = solve_equilibrium_vi(game)
        np.testing.assert_array_equal(result.subsidies, 0.0)
        assert result.method == "vi"
        assert result.iterations == 0

    def test_certified_frontend_zero_cap(self, two_cp_market):
        game = SubsidizationGame(two_cp_market, 0.0)
        result = solve_equilibrium(game)
        np.testing.assert_array_equal(result.subsidies, 0.0)
        assert result.kkt_residual == 0.0
