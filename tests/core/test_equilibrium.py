"""Unit tests for repro.core.equilibrium — the Nash solvers."""

import numpy as np
import pytest

from repro.core.best_response import best_response
from repro.core.equilibrium import (
    solve_equilibrium,
    solve_equilibrium_best_response,
    solve_equilibrium_vi,
)
from repro.core.game import SubsidizationGame


class TestBestResponseSolver:
    def test_zero_cap_shortcut(self, two_cp_market):
        result = solve_equilibrium_best_response(
            SubsidizationGame(two_cp_market, 0.0)
        )
        np.testing.assert_array_equal(result.subsidies, [0.0, 0.0])
        assert result.iterations == 0

    def test_fixed_point_of_best_response(self, four_cp_market):
        game = SubsidizationGame(four_cp_market, 1.0)
        result = solve_equilibrium_best_response(game, tol=1e-11)
        for i in range(4):
            assert best_response(game, i, result.subsidies) == pytest.approx(
                result.subsidies[i], abs=1e-8
            )

    def test_certified_by_kkt_residual(self, four_cp_market):
        game = SubsidizationGame(four_cp_market, 1.0)
        result = solve_equilibrium_best_response(game)
        assert result.kkt_residual < 1e-8

    def test_independent_of_initial_point(self, four_cp_market):
        game = SubsidizationGame(four_cp_market, 1.0)
        from_zero = solve_equilibrium_best_response(game)
        from_cap = solve_equilibrium_best_response(game, initial=np.ones(4))
        np.testing.assert_allclose(
            from_zero.subsidies, from_cap.subsidies, atol=1e-8
        )

    def test_damping_validation(self, two_cp_market):
        game = SubsidizationGame(two_cp_market, 1.0)
        with pytest.raises(ValueError):
            solve_equilibrium_best_response(game, damping=0.0)


class TestVISolver:
    def test_agrees_with_best_response(self, four_cp_market):
        game = SubsidizationGame(four_cp_market, 1.0)
        br = solve_equilibrium_best_response(game, tol=1e-11)
        vi = solve_equilibrium_vi(game, tol=1e-10)
        np.testing.assert_allclose(vi.subsidies, br.subsidies, atol=1e-7)

    def test_result_is_feasible(self, two_cp_market):
        game = SubsidizationGame(two_cp_market, 0.25)
        result = solve_equilibrium_vi(game, tol=1e-10)
        assert np.all(result.subsidies >= 0.0)
        assert np.all(result.subsidies <= 0.25 + 1e-12)


class TestCertifiedFrontend:
    def test_returns_certified_result(self, four_cp_market):
        game = SubsidizationGame(four_cp_market, 1.0)
        result = solve_equilibrium(game)
        assert result.kkt_residual <= 1e-7
        assert result.method in {"best_response", "vi"}

    def test_warm_start_accelerates(self, four_cp_market):
        game = SubsidizationGame(four_cp_market, 1.0)
        cold = solve_equilibrium(game)
        warm = solve_equilibrium(game, initial=cold.subsidies)
        assert warm.iterations <= cold.iterations
        np.testing.assert_allclose(warm.subsidies, cold.subsidies, atol=1e-9)

    def test_state_matches_subsidies(self, four_cp_market):
        game = SubsidizationGame(four_cp_market, 1.0)
        result = solve_equilibrium(game)
        np.testing.assert_allclose(
            result.state.throughputs,
            game.state(result.subsidies).throughputs,
            rtol=1e-12,
        )

    def test_nobody_can_deviate_profitably(self, four_cp_market):
        # The economic definition, checked by brute force.
        game = SubsidizationGame(four_cp_market, 0.8)
        result = solve_equilibrium(game)
        s = result.subsidies
        for i in range(4):
            here = game.utility(i, s)
            for si in np.linspace(0.0, 0.8, 81):
                trial = s.copy()
                trial[i] = si
                assert game.utility(i, trial) <= here + 1e-9

    def test_single_cp_market(self):
        from repro.providers import AccessISP, Market, exponential_cp

        market = Market(
            [exponential_cp(3.0, 2.0, value=1.0)],
            AccessISP(price=1.0, capacity=1.0),
        )
        game = SubsidizationGame(market, 1.0)
        result = solve_equilibrium(game)
        # A monopolist CP's subsidy solves u_1(s) = 0 interior.
        assert 0.0 < result.subsidies[0] < 1.0
        assert result.kkt_residual < 1e-9
