"""Batched game evaluation: marginal utilities, KKT residuals, evaluator."""

import numpy as np
import pytest

from repro.core.equilibrium import kkt_residuals_batch, solve_equilibrium
from repro.core.game import BatchedProfileEvaluator, SubsidizationGame


@pytest.fixture
def game(four_cp_market):
    return SubsidizationGame(four_cp_market, 1.0)


class TestBatchedMarginals:
    def test_matches_scalar_path(self, game):
        rng = np.random.default_rng(5)
        profiles = rng.uniform(0.0, 1.0, size=(16, game.size))
        batched = game.marginal_utilities_batch(profiles)
        for b in range(16):
            np.testing.assert_allclose(
                batched[b],
                game.marginal_utilities(profiles[b]),
                rtol=0,
                atol=1e-12,
            )

    def test_diagnostics_match_scalar_path(self, game):
        rng = np.random.default_rng(9)
        profiles = rng.uniform(0.0, 1.0, size=(6, game.size))
        batch = game.marginal_diagnostics_batch(profiles)
        for b in range(6):
            scalar = game.marginal_diagnostics(profiles[b])
            np.testing.assert_allclose(batch.dm_ds[b], scalar.dm_ds, atol=1e-12)
            np.testing.assert_allclose(
                batch.dphi_ds[b], scalar.dphi_ds, atol=1e-12
            )
            np.testing.assert_allclose(
                batch.dtheta_own_ds[b], scalar.dtheta_own_ds, atol=1e-12
            )

    def test_single_profile_promotes(self, game):
        s = np.full(game.size, 0.3)
        np.testing.assert_allclose(
            game.marginal_utilities_batch(s)[0],
            game.marginal_utilities(s),
            atol=1e-12,
        )


class TestKKTResidualsBatch:
    def test_matches_scalar_residual(self, game):
        from repro.core.equilibrium import _kkt_residual

        rng = np.random.default_rng(2)
        profiles = rng.uniform(0.0, 1.0, size=(10, game.size))
        batched = kkt_residuals_batch(game, profiles)
        for b in range(10):
            assert batched[b] == pytest.approx(
                _kkt_residual(game, profiles[b]), abs=1e-12
            )

    def test_zero_at_equilibrium(self, game):
        eq = solve_equilibrium(game)
        residuals = kkt_residuals_batch(game, eq.subsidies[None, :])
        assert residuals[0] <= 1e-8

    def test_one_dimensional_input(self, game):
        residuals = kkt_residuals_batch(game, np.zeros(game.size))
        assert residuals.shape == (1,)


class TestBatchedProfileEvaluator:
    def test_warm_start_does_not_change_results(self, game):
        rng = np.random.default_rng(13)
        first = rng.uniform(0.0, 1.0, size=(8, game.size))
        second = np.clip(first + rng.normal(0.0, 0.01, first.shape), 0.0, 1.0)
        evaluator = BatchedProfileEvaluator(game)
        evaluator.marginal_utilities(first)
        warm = evaluator.marginal_utilities(second)
        cold = game.marginal_utilities_batch(second)
        np.testing.assert_allclose(warm, cold, rtol=0, atol=1e-12)

    def test_shape_change_resets_warm_start(self, game):
        evaluator = BatchedProfileEvaluator(game)
        evaluator.marginal_utilities(np.zeros((4, game.size)))
        out = evaluator.marginal_utilities(np.zeros((2, game.size)))
        assert out.shape == (2, game.size)
