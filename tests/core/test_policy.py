"""Unit tests for repro.core.policy — Theorem 8."""

import numpy as np
import pytest

from repro.core.equilibrium import solve_equilibrium
from repro.core.game import SubsidizationGame
from repro.core.policy import policy_effect, price_response_derivative


class TestPolicyEffectFixedPrice:
    """With dp/dq = 0 Theorem 8 specializes to Corollary 1's fixed-price case."""

    def test_matches_finite_difference_of_populations(self, four_cp_market):
        q = 0.2
        effect = policy_effect(four_cp_market, q)
        h = 1e-5

        def populations_at(cap):
            game = SubsidizationGame(four_cp_market, cap)
            return solve_equilibrium(game).state.populations

        fd = (populations_at(q + h) - populations_at(q - h)) / (2.0 * h)
        np.testing.assert_allclose(effect.dm_dq, fd, atol=1e-4)

    def test_matches_finite_difference_of_throughputs(self, four_cp_market):
        q = 0.2
        effect = policy_effect(four_cp_market, q)
        h = 1e-5

        def throughputs_at(cap):
            game = SubsidizationGame(four_cp_market, cap)
            return solve_equilibrium(game).state.throughputs

        fd = (throughputs_at(q + h) - throughputs_at(q - h)) / (2.0 * h)
        np.testing.assert_allclose(effect.dtheta_dq, fd, atol=1e-4)

    def test_utilization_rises_with_policy(self, four_cp_market):
        effect = policy_effect(four_cp_market, 0.2)
        assert effect.dphi_dq >= 0.0

    def test_condition_17_equals_derivative_sign(self, four_cp_market):
        effect = policy_effect(four_cp_market, 0.2)
        for i in range(4):
            assert effect.throughput_rises(i) == (effect.dtheta_dq[i] > 0.0)

    def test_welfare_derivative_aggregates_throughput_effects(
        self, four_cp_market
    ):
        effect = policy_effect(four_cp_market, 0.2)
        expected = float(np.dot(four_cp_market.values, effect.dtheta_dq))
        assert effect.dwelfare_dq == pytest.approx(expected, rel=1e-12)


class TestPolicyEffectWithPriceResponse:
    def test_price_response_shifts_effective_prices(self, four_cp_market):
        fixed = policy_effect(four_cp_market, 0.2, dp_dq=0.0)
        responsive = policy_effect(four_cp_market, 0.2, dp_dq=0.5)
        # A rising price pushes every effective price up relative to the
        # fixed-price case.
        assert np.all(responsive.dt_dq >= fixed.dt_dq - 1e-12)

    def test_total_derivative_matches_chained_finite_difference(
        self, four_cp_market
    ):
        # Model an exogenous linear price response p(q) = 1 + 0.3(q - 0.2).
        q0, slope = 0.2, 0.3
        effect = policy_effect(four_cp_market, q0, dp_dq=slope)
        h = 1e-5

        def throughputs_at(q):
            market = four_cp_market.with_price(1.0 + slope * (q - q0))
            return solve_equilibrium(SubsidizationGame(market, q)).state.throughputs

        fd = (throughputs_at(q0 + h) - throughputs_at(q0 - h)) / (2.0 * h)
        np.testing.assert_allclose(effect.dtheta_dq, fd, atol=1e-4)

    def test_strong_price_response_can_hurt_welfare(self, four_cp_market):
        gentle = policy_effect(four_cp_market, 0.2, dp_dq=0.0)
        harsh = policy_effect(four_cp_market, 0.2, dp_dq=5.0)
        assert harsh.dwelfare_dq < gentle.dwelfare_dq

    def test_explicit_price_override(self, four_cp_market):
        effect = policy_effect(four_cp_market, 0.2, price=0.7)
        assert effect.state.price == pytest.approx(0.7)


class TestPriceResponseDerivative:
    def test_linear_rule_recovered(self, four_cp_market):
        slope = price_response_derivative(
            four_cp_market, lambda q: 1.0 + 0.4 * q, 0.5
        )
        assert slope == pytest.approx(0.4, rel=1e-6)

    def test_clamps_at_zero_policy(self, four_cp_market):
        slope = price_response_derivative(
            four_cp_market, lambda q: 2.0 * q, 0.0
        )
        assert slope == pytest.approx(2.0, rel=1e-5)
