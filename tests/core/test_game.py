"""Unit tests for repro.core.game — utilities and marginal utilities."""

import numpy as np
import pytest

from repro.core.game import SubsidizationGame
from repro.exceptions import ModelError
from repro.solvers.differentiation import derivative


class TestConstruction:
    def test_rejects_negative_cap(self, two_cp_market):
        with pytest.raises(ModelError):
            SubsidizationGame(two_cp_market, -0.5)

    def test_zero_cap_is_the_regulated_baseline(self, two_cp_market):
        game = SubsidizationGame(two_cp_market, 0.0)
        state = game.state()
        assert state.utilization == pytest.approx(
            two_cp_market.solve().utilization
        )

    def test_with_cap_and_price_copy(self, two_cp_market):
        game = SubsidizationGame(two_cp_market, 1.0)
        assert game.with_cap(2.0).cap == 2.0
        assert game.with_price(0.3).price == 0.3
        assert game.cap == 1.0 and game.price == 1.0

    def test_with_value_replaces_one_provider(self, two_cp_market):
        game = SubsidizationGame(two_cp_market, 1.0)
        richer = game.with_value(1, 0.9)
        np.testing.assert_allclose(richer.market.values, [1.0, 0.9])


class TestFeasibility:
    def test_accepts_box_points(self, two_cp_market):
        game = SubsidizationGame(two_cp_market, 1.0)
        assert game.feasible(np.array([0.0, 1.0]))
        assert game.feasible(np.array([0.5, 0.5]))

    def test_rejects_outside_box(self, two_cp_market):
        game = SubsidizationGame(two_cp_market, 1.0)
        assert not game.feasible(np.array([1.5, 0.0]))
        assert not game.feasible(np.array([0.0, -0.1]))
        assert not game.feasible(np.array([0.5]))


class TestUtilities:
    def test_utility_matches_state(self, four_cp_market):
        game = SubsidizationGame(four_cp_market, 1.0)
        s = np.array([0.2, 0.1, 0.0, 0.3])
        state = game.state(s)
        np.testing.assert_allclose(game.utilities(s), state.utilities)
        assert game.utility(2, s) == pytest.approx(state.utilities[2])

    def test_lemma3_unilateral_subsidy_raises_own_utilization_and_throughput(
        self, four_cp_market
    ):
        game = SubsidizationGame(four_cp_market, 1.0)
        s_lo = np.array([0.1, 0.1, 0.1, 0.1])
        s_hi = np.array([0.4, 0.1, 0.1, 0.1])
        state_lo, state_hi = game.state(s_lo), game.state(s_hi)
        assert state_hi.utilization > state_lo.utilization
        assert state_hi.throughputs[0] > state_lo.throughputs[0]
        for j in (1, 2, 3):
            assert state_hi.throughputs[j] < state_lo.throughputs[j]


class TestMarginalUtilities:
    def test_matches_finite_difference(self, four_cp_market):
        game = SubsidizationGame(four_cp_market, 1.0)
        s = np.array([0.25, 0.05, 0.4, 0.15])
        analytic = game.marginal_utilities(s)
        for i in range(4):
            def utility_of_own(si, i=i):
                trial = s.copy()
                trial[i] = si
                return game.utility(i, trial)

            fd = derivative(utility_of_own, s[i])
            assert analytic[i] == pytest.approx(fd, rel=1e-6, abs=1e-9)

    def test_diagnostics_signs(self, four_cp_market):
        game = SubsidizationGame(four_cp_market, 1.0)
        diag = game.marginal_diagnostics(np.array([0.1, 0.1, 0.1, 0.1]))
        assert np.all(diag.dm_ds > 0.0)        # subsidy attracts users
        assert np.all(diag.dphi_ds > 0.0)      # and congests the system
        assert np.all(diag.dtheta_own_ds > 0.0)  # but raises own throughput

    def test_negated_operator_is_minus_u(self, four_cp_market):
        game = SubsidizationGame(four_cp_market, 1.0)
        s = np.array([0.2, 0.2, 0.2, 0.2])
        np.testing.assert_allclose(
            game.negated_marginal_utilities(s), -game.marginal_utilities(s)
        )

    def test_marginal_utility_single_crossing_in_own_subsidy(self, two_cp_market):
        # u_i need not be monotone (exponential demand can make it rise
        # first), but it must cross zero exactly once from above — which is
        # what makes the best response unique and the root solver valid.
        game = SubsidizationGame(two_cp_market, 1.0)
        grid = np.linspace(0.0, 0.99, 100)
        values = np.array(
            [game.marginal_utility(0, np.array([si, 0.2])) for si in grid]
        )
        signs = np.sign(values)
        crossings = np.sum(np.abs(np.diff(signs)) > 0)
        assert crossings == 1
        assert values[0] > 0.0 and values[-1] < 0.0
