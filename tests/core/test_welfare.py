"""Unit tests for repro.core.welfare — Corollary 2 and the surplus extension."""

import numpy as np
import pytest

from repro.core.policy import policy_effect
from repro.core.welfare import (
    marginal_welfare_criterion,
    user_surplus,
    welfare,
)
from repro.exceptions import ModelError


class TestWelfareFunction:
    def test_dot_product(self):
        assert welfare([1.0, 2.0], [0.5, 1.0]) == pytest.approx(2.5)

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ModelError):
            welfare([1.0, 2.0], [0.5])

    def test_matches_market_state(self, four_cp_market):
        state = four_cp_market.solve([0.1, 0.0, 0.2, 0.0])
        assert welfare(state.throughputs, four_cp_market.values) == pytest.approx(
            state.welfare
        )


class TestCorollaryTwo:
    def test_criterion_sign_matches_direct_derivative(self, four_cp_market):
        # Corollary 2: with dphi/dq > 0, dW/dq > 0 iff gain > loss.
        effect = policy_effect(four_cp_market, 0.2)
        criterion = marginal_welfare_criterion(four_cp_market, effect)
        assert criterion.applicable
        assert criterion.predicts_increase() == (criterion.dwelfare_dq > 0.0)

    def test_criterion_matches_across_policy_levels(self, four_cp_market):
        for q in (0.1, 0.3, 0.45):
            effect = policy_effect(four_cp_market, q)
            criterion = marginal_welfare_criterion(four_cp_market, effect)
            if criterion.applicable and abs(criterion.dwelfare_dq) > 1e-10:
                assert criterion.predicts_increase() == (
                    criterion.dwelfare_dq > 0.0
                ), f"criterion sign disagrees at q={q}"

    def test_not_applicable_when_phi_does_not_rise(self, four_cp_market):
        # With a saturated cap nothing moves: dphi/dq = 0, criterion void.
        effect = policy_effect(four_cp_market, 5.0)
        criterion = marginal_welfare_criterion(four_cp_market, effect)
        assert not criterion.applicable

    def test_loss_term_depends_only_on_physics(self, four_cp_market):
        # The right side of Corollary 2 is built from eps^lambda_m (eq. 14),
        # which involves populations/rates but not the policy response.
        effect_a = policy_effect(four_cp_market, 0.2, dp_dq=0.0)
        effect_b = policy_effect(four_cp_market, 0.2, dp_dq=0.3)
        a = marginal_welfare_criterion(four_cp_market, effect_a)
        b = marginal_welfare_criterion(four_cp_market, effect_b)
        assert a.loss_term == pytest.approx(b.loss_term, rel=1e-9)


class TestUserSurplus:
    def test_closed_form_for_exponential_demand(self, two_cp_market):
        # For m = e^{-alpha t}: integral_t^inf m = m(t)/alpha.
        state = two_cp_market.solve()
        expected = sum(
            state.rates[i]
            * state.populations[i]
            / two_cp_market.providers[i].demand.alpha
            for i in range(2)
        )
        assert user_surplus(two_cp_market, state) == pytest.approx(
            expected, rel=1e-8
        )

    def test_subsidies_raise_user_surplus(self, two_cp_market):
        base = two_cp_market.solve()
        subsidized = two_cp_market.solve([0.4, 0.2])
        assert user_surplus(two_cp_market, subsidized) > user_surplus(
            two_cp_market, base
        )
