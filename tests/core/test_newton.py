"""Unit tests for repro.core.newton — the semismooth Newton solver."""

import numpy as np
import pytest

from repro.core.equilibrium import solve_equilibrium_best_response
from repro.core.game import SubsidizationGame
from repro.core.newton import solve_equilibrium_newton


class TestAgreement:
    @pytest.mark.parametrize("cap", [0.2, 0.5, 1.0])
    def test_matches_best_response_solver(self, four_cp_market, cap):
        game = SubsidizationGame(four_cp_market, cap)
        newton = solve_equilibrium_newton(game)
        reference = solve_equilibrium_best_response(game, tol=1e-11)
        np.testing.assert_allclose(
            newton.subsidies, reference.subsidies, atol=1e-8
        )
        assert newton.kkt_residual < 1e-9

    def test_matches_on_section5_scenario(self):
        from repro.experiments.scenarios import section5_market

        game = SubsidizationGame(section5_market(), 1.0)
        newton = solve_equilibrium_newton(game)
        reference = solve_equilibrium_best_response(game, tol=1e-11)
        np.testing.assert_allclose(
            newton.subsidies, reference.subsidies, atol=1e-8
        )


class TestConvergenceBehavior:
    def test_warm_start_converges_in_few_steps(self, four_cp_market):
        game = SubsidizationGame(four_cp_market, 1.0)
        base = solve_equilibrium_newton(game)
        nearby = solve_equilibrium_newton(
            game.with_price(1.02), initial=base.subsidies
        )
        assert nearby.iterations <= 4

    def test_zero_cap_shortcut(self, two_cp_market):
        game = SubsidizationGame(two_cp_market, 0.0)
        result = solve_equilibrium_newton(game)
        np.testing.assert_array_equal(result.subsidies, [0.0, 0.0])
        assert result.iterations == 0
        assert result.method == "newton"

    def test_handles_active_bounds(self, four_cp_market):
        # Tight cap: everyone pinned; Newton must identify the active set.
        game = SubsidizationGame(four_cp_market, 0.05)
        result = solve_equilibrium_newton(game)
        reference = solve_equilibrium_best_response(game, tol=1e-11)
        np.testing.assert_allclose(
            result.subsidies, reference.subsidies, atol=1e-9
        )

    def test_handles_zero_value_cp(self, two_cp_market):
        zeroed = two_cp_market.with_provider(
            1, two_cp_market.providers[1].with_value(0.0)
        )
        game = SubsidizationGame(zeroed, 1.0)
        result = solve_equilibrium_newton(game)
        assert result.subsidies[1] == pytest.approx(0.0, abs=1e-12)

    def test_initial_profile_is_projected(self, two_cp_market):
        game = SubsidizationGame(two_cp_market, 0.5)
        result = solve_equilibrium_newton(game, initial=np.array([5.0, -1.0]))
        assert np.all(result.subsidies >= 0.0)
        assert np.all(result.subsidies <= 0.5 + 1e-12)
