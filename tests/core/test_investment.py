"""Unit tests for repro.core.investment — the static capacity decision."""

import numpy as np
import pytest

from repro.core.investment import (
    investment_incentive,
    optimal_capacity,
    optimal_price_and_capacity,
)
from repro.exceptions import ModelError


class TestOptimalCapacity:
    def test_interior_optimum_beats_neighbors(self, four_cp_market):
        outcome = optimal_capacity(
            four_cp_market, cap=0.5, unit_cost=0.2,
            capacity_range=(0.1, 5.0), grid_points=16,
        )
        assert 0.1 < outcome.capacity < 5.0
        from repro.core.equilibrium import solve_equilibrium
        from repro.core.game import SubsidizationGame

        for mu in (outcome.capacity * 0.8, outcome.capacity * 1.2):
            eq = solve_equilibrium(
                SubsidizationGame(four_cp_market.with_capacity(mu), 0.5)
            )
            assert eq.state.revenue - 0.2 * mu <= outcome.profit + 1e-6

    def test_profit_accounts_for_cost(self, two_cp_market):
        outcome = optimal_capacity(
            two_cp_market, cap=0.0, unit_cost=0.3,
            capacity_range=(0.1, 3.0), grid_points=12,
        )
        assert outcome.profit == pytest.approx(
            outcome.revenue - 0.3 * outcome.capacity, abs=1e-9
        )

    def test_expensive_capacity_means_less_of_it(self, two_cp_market):
        cheap = optimal_capacity(
            two_cp_market, cap=0.5, unit_cost=0.05,
            capacity_range=(0.05, 5.0), grid_points=24,
        )
        dear = optimal_capacity(
            two_cp_market, cap=0.5, unit_cost=0.5,
            capacity_range=(0.05, 5.0), grid_points=24,
        )
        assert dear.capacity < cheap.capacity

    def test_validation(self, two_cp_market):
        with pytest.raises(ModelError):
            optimal_capacity(two_cp_market, cap=0.5, unit_cost=-1.0)
        with pytest.raises(ModelError):
            optimal_capacity(
                two_cp_market, cap=0.5, unit_cost=0.1, capacity_range=(1.0, 1.0)
            )


class TestInvestmentIncentive:
    def test_deregulation_raises_optimal_capacity(self, four_cp_market):
        # The paper's §6 claim in its static form: a relaxed policy makes
        # the profit-optimal capacity (weakly) larger.
        market = four_cp_market.with_price(0.8)
        outcomes = investment_incentive(
            market, caps=(0.0, 0.5, 1.0), unit_cost=0.15,
            capacity_range=(0.1, 6.0),
        )
        capacities = [o.capacity for o in outcomes]
        assert capacities[1] >= capacities[0] - 1e-6
        assert capacities[2] >= capacities[1] - 1e-6
        assert capacities[2] > capacities[0] + 1e-3

    def test_profits_also_rise_with_policy(self, four_cp_market):
        market = four_cp_market.with_price(0.8)
        outcomes = investment_incentive(
            market, caps=(0.0, 1.0), unit_cost=0.15, capacity_range=(0.1, 6.0)
        )
        assert outcomes[1].profit >= outcomes[0].profit - 1e-9


class TestJointOptimization:
    def test_coordinate_ascent_improves_on_capacity_only(self, two_cp_market):
        capacity_only = optimal_capacity(
            two_cp_market, cap=0.5, unit_cost=0.2,
            capacity_range=(0.1, 4.0), grid_points=16,
        )
        joint = optimal_price_and_capacity(
            two_cp_market, cap=0.5, unit_cost=0.2,
            price_range=(0.1, 2.5), capacity_range=(0.1, 4.0),
            grid_points=16,
        )
        assert joint.profit >= capacity_only.profit - 1e-6

    def test_outcome_is_internally_consistent(self, two_cp_market):
        joint = optimal_price_and_capacity(
            two_cp_market, cap=0.5, unit_cost=0.2,
            price_range=(0.1, 2.5), capacity_range=(0.1, 4.0),
            grid_points=12, sweeps=3,
        )
        assert joint.equilibrium.state.price == pytest.approx(joint.price)
        assert joint.equilibrium.state.capacity == pytest.approx(joint.capacity)
        assert joint.revenue == pytest.approx(
            joint.equilibrium.state.revenue, rel=1e-9
        )
