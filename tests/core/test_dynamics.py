"""Unit tests for repro.core.dynamics — Theorems 5, 6 and Corollary 1.

The Theorem 6 formulas are validated against finite differences of fully
re-solved equilibria — the strongest available check that the variational-
inequality sensitivity analysis is implemented correctly.
"""

import numpy as np
import pytest

from repro.core.dynamics import (
    deregulation_effect,
    equilibrium_sensitivity,
    profitability_comparative_static,
)
from repro.core.equilibrium import solve_equilibrium
from repro.core.game import SubsidizationGame


def resolve_subsidies(game):
    return solve_equilibrium(game).subsidies


class TestTheoremSix:
    def test_ds_dp_matches_finite_difference(self, four_cp_market):
        game = SubsidizationGame(four_cp_market, 1.0)
        eq = solve_equilibrium(game)
        sens = equilibrium_sensitivity(game, eq.subsidies)
        h = 1e-5
        fd = (
            resolve_subsidies(game.with_price(1.0 + h))
            - resolve_subsidies(game.with_price(1.0 - h))
        ) / (2.0 * h)
        np.testing.assert_allclose(sens.ds_dp, fd, atol=5e-5)

    def test_ds_dq_matches_finite_difference(self, four_cp_market):
        game = SubsidizationGame(four_cp_market, 0.35)  # mixes N+ and interior
        eq = solve_equilibrium(game)
        sens = equilibrium_sensitivity(game, eq.subsidies)
        h = 1e-5
        fd = (
            resolve_subsidies(game.with_cap(0.35 + h))
            - resolve_subsidies(game.with_cap(0.35 - h))
        ) / (2.0 * h)
        np.testing.assert_allclose(sens.ds_dq, fd, atol=5e-5)

    def test_capped_cps_track_the_cap(self, four_cp_market):
        game = SubsidizationGame(four_cp_market, 0.05)
        eq = solve_equilibrium(game)
        sens = equilibrium_sensitivity(game, eq.subsidies)
        for j in sens.partition.capped:
            assert sens.ds_dq[j] == 1.0
            assert sens.ds_dp[j] == 0.0

    def test_zero_cps_do_not_move(self, two_cp_market):
        zeroed = two_cp_market.with_provider(
            1, two_cp_market.providers[1].with_value(0.0)
        )
        game = SubsidizationGame(zeroed, 1.0)
        eq = solve_equilibrium(game)
        sens = equilibrium_sensitivity(game, eq.subsidies)
        assert 1 in sens.partition.zero
        assert sens.ds_dq[1] == 0.0
        assert sens.ds_dp[1] == 0.0

    def test_all_interior_implies_zero_ds_dq(self, four_cp_market):
        # With a loose cap everyone is interior; relaxing q further changes
        # nothing (first case structure of equation (11)).
        game = SubsidizationGame(four_cp_market, 1.0)
        eq = solve_equilibrium(game)
        sens = equilibrium_sensitivity(game, eq.subsidies)
        assert sens.partition.interior == (0, 1, 2, 3)
        np.testing.assert_allclose(sens.ds_dq, 0.0, atol=1e-12)


class TestCorollaryOne:
    def test_deregulation_raises_phi_and_revenue(self, four_cp_market):
        game = SubsidizationGame(four_cp_market, 0.2)  # binding cap
        eq = solve_equilibrium(game)
        effect = deregulation_effect(game, eq.subsidies)
        assert effect.dphi_dq >= 0.0
        assert effect.drevenue_dq >= 0.0
        assert np.all(effect.ds_dq >= -1e-12)

    def test_dphi_dq_matches_finite_difference(self, four_cp_market):
        game = SubsidizationGame(four_cp_market, 0.2)
        eq = solve_equilibrium(game)
        effect = deregulation_effect(game, eq.subsidies)
        h = 1e-5

        def phi_at(cap):
            g = game.with_cap(cap)
            return solve_equilibrium(g).state.utilization

        fd = (phi_at(0.2 + h) - phi_at(0.2 - h)) / (2.0 * h)
        assert effect.dphi_dq == pytest.approx(fd, rel=1e-3)

    def test_drevenue_dq_matches_finite_difference(self, four_cp_market):
        game = SubsidizationGame(four_cp_market, 0.2)
        eq = solve_equilibrium(game)
        effect = deregulation_effect(game, eq.subsidies)
        h = 1e-5

        def revenue_at(cap):
            return solve_equilibrium(game.with_cap(cap)).state.revenue

        fd = (revenue_at(0.2 + h) - revenue_at(0.2 - h)) / (2.0 * h)
        assert effect.drevenue_dq == pytest.approx(fd, rel=1e-3)

    def test_saturated_policy_has_no_effect(self, four_cp_market):
        game = SubsidizationGame(four_cp_market, 1.0)  # loose cap
        eq = solve_equilibrium(game)
        effect = deregulation_effect(game, eq.subsidies)
        assert effect.dphi_dq == pytest.approx(0.0, abs=1e-12)
        assert effect.drevenue_dq == pytest.approx(0.0, abs=1e-12)


class TestTheoremFive:
    @pytest.mark.parametrize("index", [0, 1, 2, 3])
    def test_raising_profitability_raises_subsidy(self, four_cp_market, index):
        game = SubsidizationGame(four_cp_market, 1.0)
        old_value = four_cp_market.providers[index].value
        before, after = profitability_comparative_static(
            game, index, old_value + 0.3
        )
        assert after[index] >= before[index] - 1e-9

    def test_higher_profitability_raises_own_throughput(self, four_cp_market):
        # Theorem 5 + Lemma 3: the richer CP subsidizes more and gains
        # throughput.
        game = SubsidizationGame(four_cp_market, 1.0)
        base = solve_equilibrium(game)
        richer = solve_equilibrium(game.with_value(1, 0.9))
        assert richer.subsidies[1] > base.subsidies[1]
        assert richer.state.throughputs[1] > base.state.throughputs[1]
