"""Unit tests for repro.scenarios.spec and the scenario registry."""

import pytest

from repro.exceptions import ModelError
from repro.scenarios import (
    ScenarioSpec,
    get_scenario,
    is_registered,
    register_scenario,
    scenario_ids,
    scenario_summary,
    section3_scenario,
    section5_scenario,
)
from repro.scenarios.spec import DEFAULT_POLICY_LEVELS, DEFAULT_PRICES
from repro.experiments.scenarios import section3_market


def tiny_spec(**overrides) -> ScenarioSpec:
    kwargs = dict(
        scenario_id="tiny",
        title="a tiny test scenario",
        market=section3_market(),
        prices=(0.0, 1.0, 2.0),
        policy_levels=(0.0, 1.0),
        metadata={"source": "test"},
    )
    kwargs.update(overrides)
    return ScenarioSpec(**kwargs)


class TestScenarioSpec:
    def test_axes_coerced_to_float_tuples(self):
        spec = tiny_spec(prices=[0, 1, 2])
        assert spec.prices == (0.0, 1.0, 2.0)
        assert isinstance(spec.prices, tuple)

    def test_empty_prices_rejected(self):
        with pytest.raises(ModelError):
            tiny_spec(prices=())

    def test_non_increasing_axis_rejected(self):
        with pytest.raises(ModelError):
            tiny_spec(prices=(0.0, 1.0, 1.0))
        with pytest.raises(ModelError):
            tiny_spec(policy_levels=(1.0, 0.5))

    def test_negative_axis_rejected(self):
        with pytest.raises(ModelError):
            tiny_spec(prices=(-0.5, 1.0))

    def test_blank_id_rejected(self):
        with pytest.raises(ModelError):
            tiny_spec(scenario_id="")
        with pytest.raises(ModelError):
            tiny_spec(scenario_id="has space")

    def test_metadata_is_read_only(self):
        spec = tiny_spec()
        with pytest.raises(TypeError):
            spec.metadata["source"] = "mutated"

    def test_defaults_are_the_paper_axes(self):
        assert DEFAULT_PRICES[0] == 0.0
        assert DEFAULT_PRICES[-1] == 2.0
        assert len(DEFAULT_PRICES) == 41
        assert DEFAULT_POLICY_LEVELS == (0.0, 0.5, 1.0, 1.5, 2.0)

    def test_describe_mentions_id_families_and_axes(self):
        text = tiny_spec().describe()
        assert "tiny" in text
        assert "ExponentialDemand" in text
        assert "3 points" in text
        assert "source" in text

    def test_family_counts(self):
        counts = tiny_spec().family_counts()
        assert counts == {"ExponentialDemand": 9, "ExponentialThroughput": 9}


class TestPaperScenarios:
    def test_section3(self):
        spec = section3_scenario()
        assert spec.scenario_id == "section3"
        assert spec.size == 9
        assert spec.policy_levels == (0.0,)
        assert len(spec.prices) == 41

    def test_section5(self):
        spec = section5_scenario()
        assert spec.scenario_id == "section5"
        assert spec.size == 8
        assert spec.policy_levels == (0.0, 0.5, 1.0, 1.5, 2.0)

    def test_registered(self):
        for sid in ("section3", "section5"):
            assert is_registered(sid)
            assert get_scenario(sid).scenario_id == sid


class TestRegistry:
    def test_builtin_ids_listed(self):
        ids = scenario_ids()
        for sid in ("section3", "section5", "scaled-64", "scaled-256",
                    "scaled-1024", "random-12"):
            assert sid in ids

    def test_summaries_available_without_building(self):
        assert "1024" in scenario_summary("scaled-1024")

    def test_get_scenario_caches(self):
        assert get_scenario("section3") is get_scenario("section3")

    def test_unknown_id_raises_keyerror_with_choices(self):
        with pytest.raises(KeyError, match="registered scenarios"):
            get_scenario("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_scenario(
                "section3", section3_scenario, summary="duplicate"
            )

    def test_factory_id_mismatch_rejected(self):
        register_scenario(
            "mismatched-id-test", section5_scenario, summary="wrong id"
        )
        with pytest.raises(ValueError, match="mismatched-id-test"):
            get_scenario("mismatched-id-test")
