"""The trajectory scenario generators: lineage, seeds and round trips."""

import json

import pytest

from repro.exceptions import ModelError
from repro.io import scenario_from_dict, scenario_to_dict
from repro.scenarios import (
    get_scenario,
    scaled_market,
    shocked_market,
    trajectory_variant,
)
from repro.simulation import DynamicsSpec, dynamics_settings


@pytest.fixture
def base():
    return scaled_market(
        4,
        prices=(0.5, 1.0),
        policy_levels=(0.0,),
        scenario_id="gen-dyn-base",
    )


class TestTrajectoryVariant:
    def test_records_block_and_lineage(self, base):
        scn = trajectory_variant(base, kind="subsidies", horizon=7, cap=1.0)
        assert scn.metadata["variant_of"] == "gen-dyn-base"
        assert scn.metadata["generator"] == "trajectory_variant"
        spec = dynamics_settings(scn.metadata)
        assert spec.kind == "subsidies"
        assert spec.horizon == 7
        assert spec.cap == 1.0
        assert scn.scenario_id == "gen-dyn-base-dyn-subsidies-7"

    def test_market_and_axes_unchanged(self, base):
        scn = trajectory_variant(base, horizon=3)
        assert scn.market is base.market
        assert scn.prices == base.prices
        assert scn.policy_levels == base.policy_levels

    def test_overrides_an_existing_block(self, base):
        first = trajectory_variant(base, horizon=5, cap=1.0)
        second = trajectory_variant(first, horizon=9, scenario_id="again")
        spec = dynamics_settings(second.metadata)
        assert spec.horizon == 9
        assert spec.cap == 1.0  # inherited from the first block

    def test_unknown_knob_rejected(self, base):
        with pytest.raises(ModelError):
            trajectory_variant(base, carriers=4)

    def test_round_trips_through_scenario_format(self, base):
        scn = trajectory_variant(base, kind="capacity", horizon=6)
        payload = json.loads(json.dumps(scenario_to_dict(scn)))
        restored = scenario_from_dict(payload)
        assert dynamics_settings(restored.metadata) == dynamics_settings(
            scn.metadata
        )
        assert scenario_to_dict(restored) == scenario_to_dict(scn)


class TestShockedMarket:
    def test_same_seed_same_schedule(self, base):
        first = shocked_market(base, seed=3, horizon=8)
        second = shocked_market(base, seed=3, horizon=8)
        assert first.metadata["dynamics"] == second.metadata["dynamics"]
        assert first.metadata["seed"] == 3

    def test_different_seed_different_schedule(self, base):
        first = shocked_market(base, seed=3, horizon=8)
        second = shocked_market(base, seed=4, horizon=8)
        assert (
            first.metadata["dynamics"]["shocks"]
            != second.metadata["dynamics"]["shocks"]
        )

    def test_shocks_land_within_the_horizon(self, base):
        scn = shocked_market(base, seed=5, horizon=6, n_shocks=3)
        spec = dynamics_settings(scn.metadata)
        assert len(spec.shocks) == 3
        assert all(1 <= k.step <= 6 for k in spec.shocks)
        assert len({k.step for k in spec.shocks}) == 3

    def test_validation(self, base):
        with pytest.raises(ModelError):
            shocked_market(base, seed=1, n_shocks=0)
        with pytest.raises(ModelError):
            shocked_market(base, seed=1, horizon=2, n_shocks=5)
        with pytest.raises(ModelError):
            shocked_market(base, seed=1, fields=())
        with pytest.raises(ModelError):
            shocked_market(base, seed=1, scale_range=(1.3, 0.7))

    def test_seed_survives_the_round_trip(self, base):
        scn = shocked_market(base, seed=21, horizon=5)
        restored = scenario_from_dict(
            json.loads(json.dumps(scenario_to_dict(scn)))
        )
        assert restored.metadata["seed"] == 21
        assert dynamics_settings(restored.metadata) == dynamics_settings(
            scn.metadata
        )


class TestRegisteredInstance:
    def test_dynamics20_is_registered_and_valid(self):
        scn = get_scenario("dynamics-20")
        spec = dynamics_settings(scn.metadata)
        assert spec == DynamicsSpec.from_dict(scn.metadata["dynamics"])
        assert spec.kind == "capacity"
        assert spec.horizon == 20
        assert scn.metadata["variant_of"] == "section5"
