"""The oligopoly(...) scenario generator and its repro-scenario/1 round trip."""

import pytest

from repro.competition import OligopolyGame
from repro.engine import SolveCache, SolveService
from repro.exceptions import ModelError
from repro.io import load_scenario, save_scenario
from repro.scenarios import get_scenario, oligopoly, random_market


def base_scenario():
    return random_market(
        seed=77,
        n_types=4,
        policy_levels=(0.0, 0.5),
        scenario_id="rt-base",
    )


class TestGenerator:
    def test_metadata_records_competition_parameters(self):
        spec = oligopoly(
            base_scenario(), 3, switching=1.5, cap=0.25,
            iteration_mode="jacobi",
        )
        assert spec.scenario_id == "rt-base-oligopoly-3"
        meta = spec.metadata
        assert meta["generator"] == "oligopoly"
        assert meta["carriers"] == 3
        assert meta["switching"] == 1.5
        assert meta["cap"] == 0.25
        assert meta["split_capacity"] is True
        assert meta["iteration_mode"] == "jacobi"
        assert meta["variant_of"] == "rt-base"
        # The base generator's provenance survives the derivation.
        assert meta["seed"] == 77

    def test_market_and_axes_unchanged(self):
        base = base_scenario()
        spec = oligopoly(base, 4)
        assert spec.market is base.market
        assert spec.prices == base.prices
        assert spec.policy_levels == base.policy_levels

    def test_validation(self):
        base = base_scenario()
        with pytest.raises(ModelError):
            oligopoly(base, 0)
        with pytest.raises(ModelError):
            oligopoly(base, 2, switching=-1.0)
        with pytest.raises(ModelError):
            oligopoly(base, 2, cap=-0.1)
        with pytest.raises(ModelError):
            oligopoly(base, 2, iteration_mode="sor")

    def test_registered_instance(self):
        spec = get_scenario("oligopoly-4")
        assert spec.metadata["carriers"] == 4
        assert spec.metadata["variant_of"] == "section5"


class TestRoundTrip:
    def test_seeded_random_oligopoly_round_trips(self, tmp_path):
        spec = oligopoly(base_scenario(), 3, switching=1.5, cap=0.25)
        path = tmp_path / "oligopoly.json"
        save_scenario(spec, path)
        loaded = load_scenario(path)
        assert loaded.scenario_id == spec.scenario_id
        assert dict(loaded.metadata) == dict(spec.metadata)
        assert loaded.prices == spec.prices
        assert loaded.policy_levels == spec.policy_levels

    def test_loaded_scenario_rebuilds_the_same_game(self, tmp_path):
        spec = oligopoly(base_scenario(), 3, switching=1.5, cap=0.25)
        path = tmp_path / "oligopoly.json"
        save_scenario(spec, path)
        loaded = load_scenario(path)

        original = OligopolyGame.from_scenario(
            spec, service=SolveService(cache=SolveCache())
        )
        rebuilt = OligopolyGame.from_scenario(
            loaded, service=SolveService(cache=SolveCache())
        )
        assert rebuilt.n_carriers == original.n_carriers == 3
        assert rebuilt.switching == original.switching
        assert rebuilt.cap == original.cap
        assert [i.capacity for i in rebuilt.isps] == [
            i.capacity for i in original.isps
        ]
        # The serialized market is canonical, so the rebuilt game solves
        # to bitwise-identical states.
        prices = (0.9, 1.0, 1.1)
        a = original.solve(prices)
        b = rebuilt.solve(prices)
        assert a.prices == b.prices
        assert a.shares == b.shares
        assert a.revenues == b.revenues
        for k in range(3):
            assert (
                a.equilibria[k].subsidies.tobytes()
                == b.equilibria[k].subsidies.tobytes()
            )
