"""Unit tests for repro.scenarios.generators."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.io import scenario_to_dict
from repro.network.utilization import MM1Utilization
from repro.scenarios import (
    capacity_variant,
    get_scenario,
    random_market,
    scaled_market,
    utilization_variant,
)


class TestScaledMarket:
    def test_sizes(self):
        for n in (1, 8, 64, 100):
            assert scaled_market(n).size == n

    def test_deterministic(self):
        a = scenario_to_dict(scaled_market(32))
        b = scenario_to_dict(scaled_market(32))
        assert a == b

    def test_total_demand_invariant_in_n(self):
        # Aggregate demand at p=0 equals total_demand regardless of n, so
        # the congestion operating point stays comparable as n grows.
        for n in (8, 64, 256):
            market = scaled_market(n, total_demand=2.0).market
            total = sum(cp.demand.population(0.0) for cp in market.providers)
            assert total == pytest.approx(2.0)

    def test_spans_covered(self):
        market = scaled_market(64, alpha_span=(1.0, 5.0), beta_span=(2.0, 4.0)).market
        alphas = {cp.demand.alpha for cp in market.providers}
        betas = {cp.throughput.beta for cp in market.providers}
        assert min(alphas) == 1.0 and max(alphas) == 5.0
        assert min(betas) == 2.0 and max(betas) == 4.0

    def test_values_cycle(self):
        market = scaled_market(8, value_levels=(0.25, 0.75)).market
        assert [cp.value for cp in market.providers] == [0.25, 0.75] * 4

    def test_metadata_records_generator(self):
        spec = scaled_market(16)
        assert spec.metadata["generator"] == "scaled_market"
        assert spec.metadata["n_types"] == 16

    def test_solves(self):
        state = scaled_market(256).market.solve()
        assert state.aggregate_throughput > 0.0
        assert np.isfinite(state.utilization)

    def test_invalid_inputs(self):
        with pytest.raises(ModelError):
            scaled_market(0)
        with pytest.raises(ModelError):
            scaled_market(4, total_demand=0.0)
        with pytest.raises(ModelError):
            scaled_market(4, value_levels=())


class TestRandomMarket:
    def test_seed_reproducible(self):
        assert scenario_to_dict(random_market(7, 16)) == scenario_to_dict(
            random_market(7, 16)
        )

    def test_seed_recorded_and_varied(self):
        spec = random_market(7, 16)
        assert spec.metadata["seed"] == 7
        assert scenario_to_dict(spec) != scenario_to_dict(random_market(8, 16))

    def test_draws_multiple_families(self):
        spec = random_market(3, 32)
        counts = spec.family_counts()
        demand_families = {
            name
            for name in counts
            if "Demand" in name
        }
        assert len(demand_families) >= 3

    def test_family_restriction(self):
        spec = random_market(
            5, 8, families=("exponential",), throughput_families=("rational",),
            scaled_share=0.0,
        )
        counts = spec.family_counts()
        assert counts == {"ExponentialDemand": 8, "RationalThroughput": 8}

    def test_solves_and_values_in_range(self):
        spec = random_market(11, 24, value_range=(0.2, 0.8))
        values = spec.market.values
        assert np.all(values >= 0.2) and np.all(values <= 0.8)
        assert spec.market.solve().aggregate_throughput > 0.0

    def test_unknown_family_rejected(self):
        with pytest.raises(ModelError):
            random_market(1, 4, families=("nope",)).market.solve()

    def test_invalid_share_rejected(self):
        with pytest.raises(ModelError):
            random_market(1, 4, scaled_share=1.5)


class TestVariants:
    def test_capacity_variant(self):
        base = scaled_market(8)
        variant = capacity_variant(base, 2.5)
        assert variant.market.isp.capacity == 2.5
        assert variant.metadata["variant_of"] == base.scenario_id
        assert variant.scenario_id == "scaled-8-mu2.5"
        # CP population is shared, axes preserved.
        assert variant.size == base.size
        assert variant.prices == base.prices

    def test_utilization_variant(self):
        base = scaled_market(8)
        variant = utilization_variant(base, MM1Utilization())
        assert isinstance(variant.market.isp.utilization, MM1Utilization)
        assert variant.metadata["utilization"] == "MM1Utilization"
        # Same demand, harder congestion metric: utilization differs.
        assert variant.market.solve().utilization != base.market.solve().utilization


class TestRegisteredInstances:
    def test_scaled_256_builds(self):
        spec = get_scenario("scaled-256")
        assert spec.size == 256
        assert 0.0 in spec.policy_levels

    def test_random_12_builds_and_is_heterogeneous(self):
        spec = get_scenario("random-12")
        assert spec.size == 12
        assert len(spec.family_counts()) >= 3
