"""The generated CLI reference must match the committed page.

``docs/reference/cli.md`` is rendered from the runner's actual argparse
tree (:mod:`repro.experiments.docgen`); this test is the tier-1 face of
the CI drift gate — add a flag without regenerating the page and the
suite fails with the regeneration command in the message.
"""

from pathlib import Path

from repro.experiments.docgen import generate_cli_reference, main

REPO_ROOT = Path(__file__).resolve().parents[2]
CLI_PAGE = REPO_ROOT / "docs" / "reference" / "cli.md"


def test_committed_cli_reference_is_fresh():
    committed = CLI_PAGE.read_text(encoding="utf-8")
    assert committed == generate_cli_reference(), (
        "docs/reference/cli.md is stale; regenerate with "
        "PYTHONPATH=src python -m repro.experiments.docgen "
        "--write docs/reference/cli.md"
    )


def test_reference_covers_every_verb():
    page = generate_cli_reference()
    for verb in ("list", "run", "describe", "oligopoly", "dynamics", "cache"):
        assert f"## `{verb}`" in page


def test_docgen_check_mode(tmp_path, capsys):
    fresh = tmp_path / "cli.md"
    assert main(["--write", str(fresh)]) == 0
    assert main(["--check", str(fresh)]) == 0
    fresh.write_text("stale", encoding="utf-8")
    assert main(["--check", str(fresh)]) == 1
    err = capsys.readouterr().err
    assert "stale" in err and "--write" in err


def test_docgen_check_missing_file(tmp_path):
    assert main(["--check", str(tmp_path / "absent.md")]) == 1
