"""The serve page's walkthrough must execute, in order, verbatim.

``docs/serve.md`` promises that every ``sh`` fenced block on the page —
booting the daemon, the curl API walkthrough, the concurrent replay, the
SIGTERM shutdown — runs as written. This test extracts the blocks and
executes them in document order inside one scratch directory, then
checks the artifacts the page creates: a sharded store, a replay summary
with ``computed_delta == 0`` and a clean-shutdown log line.
"""

import json
import os
import re
import signal
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
SERVE_DOC = REPO_ROOT / "docs" / "serve.md"

_FENCE = re.compile(r"^```(\w+)\n(.*?)^```", re.MULTILINE | re.DOTALL)


def _sh_blocks() -> list[str]:
    text = SERVE_DOC.read_text(encoding="utf-8")
    return [body for language, body in _FENCE.findall(text) if language == "sh"]


@pytest.fixture(scope="module")
def workdir(tmp_path_factory):
    """One scratch directory for the whole walkthrough, with a python
    shim so the page's plain ``python`` commands use this interpreter."""
    path = tmp_path_factory.mktemp("serve-doc")
    shim_dir = path / "bin"
    shim_dir.mkdir()
    shim = shim_dir / "python"
    shim.write_text(f'#!/bin/sh\nexec "{sys.executable}" "$@"\n')
    shim.chmod(0o755)
    yield path
    # The page's last block stops the daemon; if an earlier block failed,
    # don't leak it past the test.
    pid_file = path / "serve.pid"
    if pid_file.is_file():
        try:
            os.kill(int(pid_file.read_text().strip()), signal.SIGTERM)
        except (OSError, ValueError):
            pass


def _env(workdir: Path) -> dict:
    env = dict(os.environ)
    env["PATH"] = f"{workdir / 'bin'}{os.pathsep}{env.get('PATH', '')}"
    env["PYTHONPATH"] = f"{REPO_ROOT / 'src'}{os.pathsep}{REPO_ROOT}"
    env.pop("REPRO_CACHE_DIR", None)  # the page manages its own store
    return env


def test_page_has_the_walkthrough():
    blocks = _sh_blocks()
    assert len(blocks) >= 6, "serve.md lost its walkthrough blocks"
    joined = "\n".join(blocks)
    assert "repro.experiments serve" in joined
    assert "curl" in joined
    assert "client replay" in joined
    assert "kill -TERM" in joined


def test_walkthrough_executes_in_order(workdir):
    env = _env(workdir)
    for index, body in enumerate(_sh_blocks()):
        proc = subprocess.run(
            ["bash", "-ec", body],
            cwd=workdir,
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, (
            f"serve.md block {index} failed (exit {proc.returncode}):\n"
            f"{body}\n--- stdout ---\n{proc.stdout}"
            f"\n--- stderr ---\n{proc.stderr}"
        )

    # The artifacts the page promises.
    store = workdir / "solve-store"
    shards = [p for p in store.iterdir() if p.is_dir() and len(p.name) == 2]
    assert shards, "the walkthrough's store grew no shard directories"
    replay = json.loads((workdir / "replay.json").read_text())
    assert replay["computed_delta"] == 0
    assert replay["failures"] == []
    log = (workdir / "serve.log").read_text()
    assert "repro serve shut down cleanly" in log
