"""The tutorial page's snippets must execute, in order, verbatim.

``docs/tutorial.md`` promises that every ``sh`` and ``python`` fenced
block on the page runs as written; this test extracts them and executes
each in document order inside one scratch directory (the environment the
page's conventions describe: ``PYTHONPATH`` on ``src/``, ``REPRO_ROOT``
at the checkout, ``REPRO_BENCH_DIR`` scratch-local). A command or API
drifting under the tutorial fails tier-1, so the page cannot rot.
"""

import json
import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
TUTORIAL = REPO_ROOT / "docs" / "tutorial.md"

#: Fenced code blocks with a language tag; only sh/python are executable
#: (text/json fences are outputs or conventions, not commands).
_FENCE = re.compile(r"^```(\w+)\n(.*?)^```", re.MULTILINE | re.DOTALL)


def _executable_blocks() -> list[tuple[str, str]]:
    text = TUTORIAL.read_text(encoding="utf-8")
    return [
        (language, body)
        for language, body in _FENCE.findall(text)
        if language in ("sh", "python")
    ]


@pytest.fixture(scope="module")
def workdir(tmp_path_factory):
    """One scratch directory shared by every snippet, with a python shim
    so the page's plain ``python`` commands resolve to this interpreter."""
    path = tmp_path_factory.mktemp("tutorial")
    shim_dir = path / "bin"
    shim_dir.mkdir()
    shim = shim_dir / "python"
    shim.write_text(f'#!/bin/sh\nexec "{sys.executable}" "$@"\n')
    shim.chmod(0o755)
    return path


def _snippet_env(workdir: Path) -> dict:
    env = dict(os.environ)
    env["PATH"] = f"{workdir / 'bin'}{os.pathsep}{env.get('PATH', '')}"
    env["PYTHONPATH"] = f"{REPO_ROOT / 'src'}{os.pathsep}{REPO_ROOT}"
    env["REPRO_ROOT"] = str(REPO_ROOT)
    env["REPRO_BENCH_DIR"] = str(workdir / "bench-out")
    # The tutorial manages its own store via --cache-dir; an ambient one
    # would silently change the cold run's counters.
    env.pop("REPRO_CACHE_DIR", None)
    return env


def test_tutorial_has_executable_snippets():
    blocks = _executable_blocks()
    assert len(blocks) >= 6, "tutorial lost its executable snippets"
    assert any(language == "sh" for language, _ in blocks)
    assert any(language == "python" for language, _ in blocks)


def test_tutorial_snippets_execute_in_order(workdir):
    env = _snippet_env(workdir)
    for index, (language, body) in enumerate(_executable_blocks()):
        if language == "sh":
            command = ["bash", "-ec", body]
        else:
            script = workdir / f"snippet_{index:02d}.py"
            script.write_text(body, encoding="utf-8")
            command = [sys.executable, str(script)]
        proc = subprocess.run(
            command,
            cwd=workdir,
            env=env,
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert proc.returncode == 0, (
            f"tutorial block {index} ({language}) failed "
            f"(exit {proc.returncode}):\n{body}\n"
            f"--- stdout ---\n{proc.stdout}\n--- stderr ---\n{proc.stderr}"
        )

    # The walkthrough's promised artifacts all exist afterwards.
    assert (workdir / "scenario.json").is_file()
    assert list((workdir / "results").glob("*.csv"))
    assert (workdir / "results" / "tutorial-trajectory.csv").is_file()
    cold = json.loads((workdir / "dynamics-cold.json").read_text())
    warm = json.loads((workdir / "dynamics-warm.json").read_text())
    assert cold["cache"]["computed"] > 0
    assert warm["cache"]["computed"] == 0
    bench = json.loads(
        (workdir / "bench-out" / "BENCH_dynamics.json").read_text()
    )
    assert bench["computed"] == 0
