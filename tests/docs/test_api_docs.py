"""The public-API docstring audit.

Every name exported by the audited modules must resolve to an object
whose docstring opens with a one-line summary. Data exports (strings,
tuples of constants, ...) are exempt — they cannot carry docstrings of
their own.
"""

import importlib

import pytest

#: Mirrors tests/docs/test_doctests.py (test modules are not importable
#: from one another under pytest's rootdir import mode).
AUDITED_MODULES = (
    "repro",
    "repro.engine.service",
    "repro.engine.store",
    "repro.scenarios.spec",
    "repro.simulation",
    "repro.simulation.capacity",
    "repro.simulation.dynamics",
    "repro.simulation.trace",
    "repro.simulation.trajectory",
)

_DATA_TYPES = (str, int, float, bool, tuple, list, dict, frozenset)


def _documented_exports(module_name):
    module = importlib.import_module(module_name)
    for export in module.__all__:
        obj = getattr(module, export)
        if isinstance(obj, _DATA_TYPES) or type(obj).__module__ == "types":
            continue
        yield export, obj


@pytest.mark.parametrize("module_name", AUDITED_MODULES)
def test_every_export_has_a_one_line_summary(module_name):
    undocumented = []
    for export, obj in _documented_exports(module_name):
        doc = getattr(obj, "__doc__", None)
        first_line = doc.strip().splitlines()[0].strip() if doc else ""
        if not first_line:
            undocumented.append(export)
    assert not undocumented, (
        f"{module_name} exports without a one-line docstring summary: "
        f"{undocumented}"
    )


@pytest.mark.parametrize("module_name", AUDITED_MODULES)
def test_module_docstring_exists(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip()
