"""Local integrity checks for the mkdocs site.

CI builds the site with ``mkdocs build --strict``; the tier-1 suite
cannot assume mkdocs is installed, so this approximates the strict
build's guarantees with the stdlib: the nav must reference files that
exist, every relative markdown link must resolve, and the README's
docs/ links must point at real pages.
"""

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
DOCS_DIR = REPO_ROOT / "docs"
MKDOCS_YML = REPO_ROOT / "mkdocs.yml"

#: Markdown inline links: [text](target)
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _nav_paths():
    """The ``path.md`` entries of mkdocs.yml's nav (regex; no yaml dep)."""
    text = MKDOCS_YML.read_text(encoding="utf-8")
    return re.findall(r":\s*([\w/.-]+\.md)\s*$", text, flags=re.MULTILINE)


def _doc_pages():
    return sorted(DOCS_DIR.rglob("*.md"))


def test_mkdocs_config_exists_and_is_strict():
    text = MKDOCS_YML.read_text(encoding="utf-8")
    assert "strict: true" in text
    assert "docs_dir: docs" in text


def test_nav_references_existing_pages():
    paths = _nav_paths()
    assert paths, "mkdocs.yml nav is empty"
    for path in paths:
        assert (DOCS_DIR / path).is_file(), f"nav references missing {path}"


def test_every_docs_page_is_in_nav():
    nav = set(_nav_paths())
    pages = {
        str(page.relative_to(DOCS_DIR)).replace("\\", "/")
        for page in _doc_pages()
    }
    assert pages, "docs/ has no markdown pages"
    missing = pages - nav
    assert not missing, f"docs pages absent from mkdocs.yml nav: {missing}"


@pytest.mark.parametrize(
    "page", _doc_pages(), ids=lambda p: str(p.relative_to(DOCS_DIR))
)
def test_relative_links_resolve(page):
    text = page.read_text(encoding="utf-8")
    broken = []
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        if not (page.parent / path).resolve().exists():
            broken.append(target)
    assert not broken, f"{page.name}: broken relative links {broken}"


def test_readme_links_to_docs_pages():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    targets = [
        t for t in _LINK.findall(readme) if t.startswith("docs/")
    ]
    assert targets, "README should link into docs/"
    for target in targets:
        path = target.split("#", 1)[0]
        assert (REPO_ROOT / path).is_file(), f"README links missing {target}"


def test_readme_mentions_bench_dir_in_quickstart():
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    assert "REPRO_BENCH_DIR" in readme
