"""Doctest collection for the audited public-API modules.

The docstring audit promises that the examples in the public modules are
*runnable*; this wires them into pytest so a drifting example fails the
tier-1 suite, not just the docs build.
"""

import doctest
import importlib

import pytest

#: The audited modules: every one must carry at least one doctest.
AUDITED_MODULES = (
    "repro",
    "repro.engine.service",
    "repro.engine.store",
    "repro.scenarios.spec",
    "repro.simulation",
    "repro.simulation.capacity",
    "repro.simulation.dynamics",
    "repro.simulation.trace",
    "repro.simulation.trajectory",
)


@pytest.mark.parametrize("module_name", AUDITED_MODULES)
def test_module_doctests_run_and_pass(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, (
        f"{module_name} carries no doctest examples; the docstring audit "
        "requires runnable examples"
    )
    assert results.failed == 0, (
        f"{module_name}: {results.failed} of {results.attempted} doctest "
        "example(s) failed"
    )
