"""The campaigns page's walkthrough must execute, in order, verbatim.

``docs/campaigns.md`` promises that every ``sh`` fenced block on the
page — the 100-row run, the status probe, the resume with
``computed == 0``, the summary CSV and the row query — runs as written.
This test extracts the blocks and executes them in document order inside
one scratch directory, then checks the artifacts the page creates: a
saved ``repro-campaign/1`` spec, a warehouse beside the store, and a
resume report with zero computed rows and zero solves.
"""

import json
import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
CAMPAIGN_DOC = REPO_ROOT / "docs" / "campaigns.md"

_FENCE = re.compile(r"^```(\w+)\n(.*?)^```", re.MULTILINE | re.DOTALL)


def _sh_blocks() -> list[str]:
    text = CAMPAIGN_DOC.read_text(encoding="utf-8")
    return [body for language, body in _FENCE.findall(text) if language == "sh"]


@pytest.fixture(scope="module")
def workdir(tmp_path_factory):
    """One scratch directory for the whole walkthrough, with a python
    shim so the page's plain ``python`` commands use this interpreter."""
    path = tmp_path_factory.mktemp("campaign-doc")
    shim_dir = path / "bin"
    shim_dir.mkdir()
    shim = shim_dir / "python"
    shim.write_text(f'#!/bin/sh\nexec "{sys.executable}" "$@"\n')
    shim.chmod(0o755)
    return path


def _env(workdir: Path) -> dict:
    env = dict(os.environ)
    env["PATH"] = f"{workdir / 'bin'}{os.pathsep}{env.get('PATH', '')}"
    env["PYTHONPATH"] = f"{REPO_ROOT / 'src'}{os.pathsep}{REPO_ROOT}"
    env.pop("REPRO_CACHE_DIR", None)  # the page manages its own store
    env.pop("REPRO_BACKEND", None)
    return env


def test_page_has_the_walkthrough():
    blocks = _sh_blocks()
    assert len(blocks) >= 5, "campaigns.md lost its walkthrough blocks"
    joined = "\n".join(blocks)
    assert "campaign run" in joined
    assert "campaign status" in joined
    assert "campaign summary" in joined
    assert "campaign query" in joined
    assert "--save-spec" in joined


def test_walkthrough_executes_in_order(workdir):
    env = _env(workdir)
    for index, body in enumerate(_sh_blocks()):
        proc = subprocess.run(
            ["bash", "-ec", body],
            cwd=workdir,
            env=env,
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert proc.returncode == 0, (
            f"campaigns.md block {index} failed (exit {proc.returncode}):\n"
            f"{body}\n--- stdout ---\n{proc.stdout}"
            f"\n--- stderr ---\n{proc.stderr}"
        )

    # The artifacts the page promises.
    saved = json.loads((workdir / "welfare-100.json").read_text())
    assert saved["format"] == "repro-campaign/1"
    assert saved["seed_count"] == 50
    assert (workdir / "store" / "campaigns.sqlite").is_file()
    report = json.loads((workdir / "rerun.json").read_text())
    assert report["rows_total"] == 100
    assert report["rows_computed"] == 0
    assert report["cache"]["computed"] == 0
    summary = (workdir / "summary.csv").read_text().splitlines()
    assert summary[0] == "metric,count,mean,std,min,p25,median,p75,max"
    rows = json.loads((workdir / "rows.json").read_text())
    assert len(rows) == 3
