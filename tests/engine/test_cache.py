"""Unit tests for the content-keyed solve cache."""

import numpy as np
import pytest

from repro.engine.cache import SolveCache, grid_key, market_fingerprint
from repro.providers import AccessISP, Market, exponential_cp


def _market(price=1.0, alpha=2.0):
    return Market(
        [exponential_cp(alpha, 3.0, value=1.0)],
        AccessISP(price=price, capacity=1.0),
    )


class TestMarketFingerprint:
    def test_equal_content_equal_fingerprint(self):
        assert market_fingerprint(_market()) == market_fingerprint(_market())

    def test_price_changes_fingerprint(self):
        assert market_fingerprint(_market(price=1.0)) != market_fingerprint(
            _market(price=1.5)
        )

    def test_provider_changes_fingerprint(self):
        assert market_fingerprint(_market(alpha=2.0)) != market_fingerprint(
            _market(alpha=5.0)
        )


class TestGridKey:
    def test_content_keyed_not_identity_keyed(self):
        prices = np.linspace(0.1, 1.0, 5)
        caps = np.array([0.0, 1.0])
        a = grid_key(_market(), prices, caps, warm_start=True)
        b = grid_key(_market(), prices.copy(), caps.copy(), warm_start=True)
        assert a == b

    def test_axes_and_options_distinguish(self):
        prices = np.linspace(0.1, 1.0, 5)
        caps = np.array([0.0, 1.0])
        base = grid_key(_market(), prices, caps, warm_start=True)
        assert base != grid_key(_market(), prices[:-1], caps, warm_start=True)
        assert base != grid_key(_market(), prices, caps[:-1], warm_start=True)
        assert base != grid_key(_market(), prices, caps, warm_start=False)


class TestSolveCache:
    def test_round_trip_and_counters(self):
        cache = SolveCache()
        assert cache.get("k") is None
        cache.put("k", 42)
        assert cache.get("k") == 42
        assert cache.hits == 1
        assert cache.misses == 1

    def test_eviction_is_oldest_first(self):
        cache = SolveCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert cache.get("a") is None
        assert cache.get("b") == 2
        assert cache.get("c") == 3

    def test_clear(self):
        cache = SolveCache()
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.get("a") is None

    def test_maxsize_validation(self):
        with pytest.raises(ValueError):
            SolveCache(maxsize=0)
