"""The executor layer: selection, fast paths, incremental commit, parity.

The contract under test (see :mod:`repro.engine.executors`):

* executor choice resolves explicit > ``$REPRO_EXECUTOR`` > ``pool`` and
  bad names fail loudly;
* one-task batches (and ``workers == 1``) run inline and never spawn a
  worker pool;
* the pool persists across batches and respawns only when the worker
  count or requested backend changes;
* results commit to the cache tiers *as they complete*, so a batch
  killed midway loses only the unfinished rows;
* serial, pool and chunked executors produce bitwise-identical results
  — and identical store contents — for grids, oligopoly rounds and
  dynamics trajectories, under the numpy and compiled backends.
"""

import threading
import time

import numpy as np
import pytest

from repro.backend import available_backends, use_backend
from repro.competition import (
    IterationPolicy,
    OligopolyGame,
    solve_oligopoly_competition,
)
from repro.engine import (
    EXECUTOR_NAMES,
    ChunkedExecutor,
    GridEngine,
    PoolExecutor,
    SerialExecutor,
    SolveCache,
    SolveService,
    SolveStore,
    get_default_executor_name,
    make_executor,
    set_default_executor,
)
from repro.engine.service import SolveTask
from repro.providers import AccessISP, Market, exponential_cp
from repro.simulation import DynamicsSpec, run_trajectory


def _backends() -> list[str]:
    names = ["numpy"]
    if available_backends()["cext"] == "resolves to cext":
        names.append("compiled")
    return names


BACKENDS = _backends()


# Module-level pure functions so tasks pickle for the pool executors.
def _square(x, *, offset=0.0):
    return {"value": np.asarray(x * x + offset, dtype=float)}


def _square_task(x, offset=0.0):
    return SolveTask(
        fn=_square,
        args=(float(x),),
        kwargs=(("offset", float(offset)),),
        key=("exec-square/1", float(x), float(offset)),
        codec="ndarrays",
    )


def _fragile(x, *, fail=False):
    if fail:
        raise RuntimeError(f"task {x} interrupted")
    return {"value": np.asarray(2.0 * x, dtype=float)}


def _fragile_task(x, fail=False):
    # ``fail`` is deliberately NOT part of the key: the rerun of an
    # interrupted batch issues the *same* tasks, minus the interruption.
    return SolveTask(
        fn=_fragile,
        args=(float(x),),
        kwargs=(("fail", bool(fail)),),
        key=("exec-fragile/1", float(x)),
        codec="ndarrays",
    )


def _slow(x, *, delay=0.0):
    time.sleep(delay)
    return {"value": np.asarray(3.0 * x, dtype=float)}


def _slow_task(x, delay=0.0):
    # ``delay`` is not part of the key: the rerun of an interrupted batch
    # issues the same tasks without the artificial slowness.
    return SolveTask(
        fn=_slow,
        args=(float(x),),
        kwargs=(("delay", float(delay)),),
        key=("exec-slow/1", float(x)),
        codec="ndarrays",
    )


def small_market():
    return Market(
        [
            exponential_cp(2.0, 2.0, value=1.0),
            exponential_cp(5.0, 3.0, value=0.6),
        ],
        AccessISP(price=1.0, capacity=1.0),
    )


def store_listing(path) -> list[str]:
    """Every store file as a root-relative path — *file-level* layout,
    shard directories included, so two listings agreeing means the
    stores are interchangeable on disk, not merely equal in content."""
    return sorted(
        str(p.relative_to(path)) for p in path.rglob("*") if p.is_file()
    )


class TestDefaultSelection:
    @pytest.fixture(autouse=True)
    def _clean_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        set_default_executor(None)
        yield
        set_default_executor(None)

    def test_builtin_default_is_pool(self):
        assert get_default_executor_name() == "pool"

    def test_env_selects(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "chunked")
        assert get_default_executor_name() == "chunked"

    def test_malformed_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "bogus")
        with pytest.raises(ValueError):
            get_default_executor_name()

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "chunked")
        set_default_executor("serial")
        assert get_default_executor_name() == "serial"
        set_default_executor(None)
        assert get_default_executor_name() == "chunked"

    def test_unknown_names_rejected_everywhere(self):
        with pytest.raises(ValueError):
            set_default_executor("bogus")
        with pytest.raises(ValueError):
            make_executor("bogus")
        with pytest.raises(ValueError):
            SolveService(executor="bogus")

    def test_service_resolves_and_reuses_by_name(self):
        service = SolveService(cache=SolveCache(), executor="serial")
        executor = service.resolve_executor()
        assert isinstance(executor, SerialExecutor)
        assert service.resolve_executor() is executor

    def test_service_follows_process_default(self):
        service = SolveService(cache=SolveCache())
        set_default_executor("serial")
        assert isinstance(service.resolve_executor(), SerialExecutor)
        set_default_executor("chunked")
        assert isinstance(service.resolve_executor(), ChunkedExecutor)

    def test_stats_surface_executor(self):
        service = SolveService(cache=SolveCache(), executor="serial")
        service.map([_square_task(1.0)])
        stats = service.stats()["executor"]
        assert stats["name"] == "serial"
        assert stats["tasks"] == 1


class TestInlineFastPath:
    """One-task batches (and workers == 1) never touch a worker pool."""

    @pytest.mark.parametrize("executor_cls", [PoolExecutor, ChunkedExecutor])
    def test_single_task_batch_never_spawns(self, executor_cls):
        executor = executor_cls()
        service = SolveService(cache=SolveCache(), executor=executor)
        (value,) = service.map([_square_task(3.0)], workers=4)
        assert float(value["value"]) == 9.0
        stats = executor.stats()
        assert stats["inline_tasks"] == 1
        assert stats["pooled_tasks"] == 0
        assert stats["pool_spawns"] == 0

    @pytest.mark.parametrize("executor_cls", [PoolExecutor, ChunkedExecutor])
    def test_workers_one_runs_inline(self, executor_cls):
        executor = executor_cls()
        service = SolveService(cache=SolveCache(), executor=executor)
        values = service.map(
            [_square_task(x) for x in (1.0, 2.0, 3.0)], workers=1
        )
        assert [float(v["value"]) for v in values] == [1.0, 4.0, 9.0]
        assert executor.stats()["pool_spawns"] == 0
        assert executor.stats()["inline_tasks"] == 3


class TestPoolPersistence:
    def test_pool_survives_across_batches(self):
        executor = PoolExecutor()
        service = SolveService(cache=SolveCache(), executor=executor)
        try:
            service.map([_square_task(x) for x in (1.0, 2.0)], workers=2)
            service.map([_square_task(x) for x in (3.0, 4.0)], workers=2)
            stats = executor.stats()
            assert stats["pool_spawns"] == 1
            assert stats["pool_reuses"] == 1
        finally:
            executor.shutdown()

    def test_worker_count_change_respawns(self):
        executor = PoolExecutor()
        service = SolveService(cache=SolveCache(), executor=executor)
        try:
            service.map([_square_task(x) for x in (1.0, 2.0)], workers=2)
            service.map([_square_task(x) for x in (3.0, 4.0)], workers=3)
            assert executor.stats()["pool_spawns"] == 2
        finally:
            executor.shutdown()

    def test_shutdown_is_idempotent(self):
        executor = PoolExecutor()
        executor.shutdown()
        executor.shutdown()

    def test_service_close_shuts_executors_down(self):
        executor = PoolExecutor()
        service = SolveService(cache=SolveCache(), executor=executor)
        service.map([_square_task(x) for x in (1.0, 2.0)], workers=2)
        service.close()
        assert executor._pool is None


class TestChunking:
    def test_derived_chunk_size_targets_oversubscription(self):
        executor = ChunkedExecutor()
        # ceil(100 / (4 workers * 4 oversubscription)) = 7
        assert executor._resolve_chunk_size(100, 4) == 7
        assert executor._resolve_chunk_size(3, 4) == 1

    def test_explicit_chunk_size_wins(self):
        assert ChunkedExecutor(chunk_size=5)._resolve_chunk_size(100, 4) == 5

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            ChunkedExecutor(chunk_size=0)

    def test_chunks_counted_and_results_ordered(self):
        executor = ChunkedExecutor(chunk_size=2)
        service = SolveService(cache=SolveCache(), executor=executor)
        try:
            xs = [float(x) for x in range(10)]
            values = service.map([_square_task(x) for x in xs], workers=2)
            assert [float(v["value"]) for v in values] == [x * x for x in xs]
            stats = executor.stats()
            assert stats["chunks"] == 5
            assert stats["pooled_tasks"] == 10
            assert stats["pool_spawns"] == 1
        finally:
            executor.shutdown()

    def test_single_chunk_falls_back_to_per_task_pooling(self):
        executor = ChunkedExecutor(chunk_size=100)
        service = SolveService(cache=SolveCache(), executor=executor)
        try:
            values = service.map(
                [_square_task(x) for x in (1.0, 2.0, 3.0)], workers=2
            )
            assert [float(v["value"]) for v in values] == [1.0, 4.0, 9.0]
            stats = executor.stats()
            assert stats["chunks"] == 0  # per-task fallback, no chunk trips
            assert stats["pooled_tasks"] == 3
        finally:
            executor.shutdown()


class TestIncrementalCommit:
    """Results land in the cache tiers as they complete, not per batch."""

    def test_interrupted_batch_keeps_completed_rows(self, tmp_path):
        service = SolveService(
            cache=SolveCache(), store=SolveStore(tmp_path), executor="serial"
        )
        tasks = [
            _fragile_task(1.0),
            _fragile_task(2.0, fail=True),  # the "kill" mid-batch
            _fragile_task(3.0),
        ]
        with pytest.raises(RuntimeError):
            service.map(tasks)
        # The row completed before the interruption is already persisted.
        assert len(service.store) == 1

        # Warm rerun of the same batch: only the lost rows recompute.
        rerun = SolveService(
            cache=SolveCache(), store=SolveStore(tmp_path), executor="serial"
        )
        values = rerun.map([_fragile_task(x) for x in (1.0, 2.0, 3.0)])
        assert [float(v["value"]) for v in values] == [2.0, 4.0, 6.0]
        assert rerun.counters.store_hits == 1
        assert rerun.counters.computed == 2

    def test_pooled_batches_commit_incrementally(self, tmp_path):
        executor = PoolExecutor()
        service = SolveService(
            cache=SolveCache(), store=SolveStore(tmp_path), executor=executor
        )
        try:
            committed = []
            original = service._commit

            def spying_commit(task, value):
                committed.append(task.key)
                return original(task, value)

            service._commit = spying_commit
            service.map([_square_task(x) for x in (5.0, 6.0, 7.0)], workers=2)
            assert len(committed) == 3
            assert len(service.store) == 3
        finally:
            executor.shutdown()


class TestCloseDuringBatch:
    """service.close() mid-batch: queued work cancels, the store survives."""

    def test_close_midbatch_leaves_store_readable(self, tmp_path):
        service = SolveService(
            cache=SolveCache(), store=SolveStore(tmp_path), executor="pool"
        )
        xs = [float(x) for x in range(1, 7)]
        failures: list[BaseException] = []

        def run_batch():
            try:
                service.map(
                    [_slow_task(x, delay=0.25) for x in xs], workers=2
                )
            except BaseException as exc:  # CancelledError is a BaseException
                failures.append(exc)

        thread = threading.Thread(target=run_batch)
        thread.start()
        # Wait for the first commit so the close genuinely interrupts a
        # batch that has landed partial work (on a slow machine the batch
        # may still finish whole — the assertions below hold either way).
        deadline = time.time() + 30.0
        while (
            time.time() < deadline
            and thread.is_alive()
            and len(service.store) == 0
        ):
            time.sleep(0.02)
        service.close()
        thread.join(timeout=60.0)
        assert not thread.is_alive()
        assert service.inflight == 0  # the gauge recovered from the cancel

        # Every committed entry decodes — nothing is torn — and a warm
        # rerun recomputes exactly the rows the cancel lost.
        survivors = 0
        check = SolveStore(tmp_path)
        for x in xs:
            value = check.get(("exec-slow/1", float(x)))
            if value is not None:
                assert float(value["value"]) == 3.0 * x
                survivors += 1
        assert survivors == len(check)
        rerun = SolveService(
            cache=SolveCache(), store=SolveStore(tmp_path), executor="serial"
        )
        values = rerun.map([_slow_task(x) for x in xs])
        assert [float(v["value"]) for v in values] == [3.0 * x for x in xs]
        assert rerun.counters.store_hits == survivors
        assert rerun.counters.computed == len(xs) - survivors


@pytest.mark.parametrize("backend", BACKENDS)
class TestExecutorParityMatrix:
    """serial / pool / chunked are bitwise-identical, store for store."""

    def _service(self, tmp_path, backend, name):
        return SolveService(
            cache=SolveCache(),
            store=SolveStore(tmp_path / f"{backend}-{name}"),
            workers=2,
            executor=name,
        )

    def test_grid_parity(self, tmp_path, backend):
        market = small_market()
        prices = np.round(np.linspace(0.1, 1.0, 4), 10)
        caps = np.array([0.0, 0.5, 1.0])
        grids, services = {}, {}
        with use_backend(backend):
            for name in EXECUTOR_NAMES:
                service = self._service(tmp_path, backend, name)
                engine = GridEngine(cache=SolveCache(), service=service)
                grids[name] = engine.solve_grid(market, prices, caps)
                services[name] = service
        try:
            reference = grids["serial"]
            for name in ("pool", "chunked"):
                for k in range(caps.size):
                    for j in range(prices.size):
                        a = reference.at(k, j)
                        b = grids[name].at(k, j)
                        assert (
                            a.subsidies.tobytes() == b.subsidies.tobytes()
                        ), f"{backend}/{name} grid cell ({k},{j}) differs"
                        assert a.state.welfare == b.state.welfare
                assert store_listing(
                    services[name].store.path
                ) == store_listing(services["serial"].store.path)
        finally:
            for service in services.values():
                service.close()

    def test_oligopoly_jacobi_parity(self, tmp_path, backend):
        cps = [exponential_cp(2.0, 2.0, value=1.0)]
        results, services = {}, {}
        with use_backend(backend):
            for name in EXECUTOR_NAMES:
                service = self._service(tmp_path, backend, name)
                game = OligopolyGame(
                    cps,
                    tuple(
                        AccessISP(price=1.0, capacity=0.25, name=f"isp-{k}")
                        for k in range(4)
                    ),
                    switching=2.0,
                    cap=0.3,
                    service=service,
                )
                results[name] = solve_oligopoly_competition(
                    game,
                    initial_prices=(0.6, 0.6, 0.6, 0.6),
                    price_range=(0.05, 2.0),
                    grid_points=8,
                    xtol=1e-3,
                    policy=IterationPolicy(mode="jacobi", tol=5e-3),
                )
                services[name] = service
        try:
            reference = results["serial"]
            for name in ("pool", "chunked"):
                assert results[name].state.prices == reference.state.prices
                assert results[name].state.revenues == reference.state.revenues
                assert results[name].iterations == reference.iterations
                for eq_a, eq_b in zip(
                    reference.state.equilibria, results[name].state.equilibria
                ):
                    assert (
                        eq_a.subsidies.tobytes() == eq_b.subsidies.tobytes()
                    )
                assert store_listing(
                    services[name].store.path
                ) == store_listing(services["serial"].store.path)
        finally:
            for service in services.values():
                service.close()

    def test_dynamics_trajectory_parity(self, tmp_path, backend):
        market = small_market()
        spec = DynamicsSpec(kind="capacity", horizon=20, segment_length=5)
        trajectories, services = {}, {}
        with use_backend(backend):
            for name in EXECUTOR_NAMES:
                service = self._service(tmp_path, backend, name)
                trajectories[name] = run_trajectory(
                    market, spec, service=service
                )
                services[name] = service
        try:
            reference = trajectories["serial"]
            for name in ("pool", "chunked"):
                got = trajectories[name]
                for attr in (
                    "capacities",
                    "revenues",
                    "welfares",
                    "utilizations",
                    "prices",
                ):
                    assert (
                        getattr(got, attr).tobytes()
                        == getattr(reference, attr).tobytes()
                    ), f"{backend}/{name} trajectory {attr} differs"
                assert store_listing(
                    services[name].store.path
                ) == store_listing(services["serial"].store.path)
        finally:
            for service in services.values():
                service.close()

    def test_stores_are_executor_interchangeable(self, tmp_path, backend):
        """A store warmed by one executor replays under another: computed == 0."""
        market = small_market()
        prices = np.round(np.linspace(0.1, 1.0, 4), 10)
        caps = np.array([0.0, 0.5])
        store_dir = tmp_path / f"{backend}-shared"
        with use_backend(backend):
            warm = SolveService(
                cache=SolveCache(),
                store=SolveStore(store_dir),
                workers=2,
                executor="chunked",
            )
            GridEngine(cache=SolveCache(), service=warm).solve_grid(
                market, prices, caps
            )
            warm.close()
            assert warm.counters.computed > 0

            replay = SolveService(
                cache=SolveCache(),
                store=SolveStore(store_dir),
                workers=2,
                executor="serial",
            )
            GridEngine(cache=SolveCache(), service=replay).solve_grid(
                market, prices, caps
            )
            assert replay.counters.computed == 0
            assert replay.counters.store_hits == caps.size
