"""Concurrency stress + fault injection for the shared solve store.

The serve daemon's load story rests on two claims about
:class:`~repro.engine.store.SolveStore`:

* **Many concurrent writers are safe.** N processes hammering one store
  with overlapping key sets leave no torn entries (every committed
  manifest decodes), no duplicates (one entry per distinct key), and a
  directory tree the index rebuild reproduces exactly — after which a
  warm replay of the whole key set performs zero solves.
* **Any corruption is a miss, never a crash.** The parametrized matrix
  covers truncated artifacts, mismatched sidecars, version skew, unknown
  codecs and a writer genuinely killed between the artifact and its
  sidecar; every case must miss-and-recompute on the sharded layout,
  under the numpy and compiled backends alike.

Heavy variants (more processes, more keys) are marked ``slow`` and run
only when ``$REPRO_SLOW_TESTS`` is set (see ``tests/conftest.py``).
"""

import json
import multiprocessing
import os

import numpy as np
import pytest

from repro.backend import available_backends, use_backend
from repro.engine import SolveCache, SolveService, SolveStore, key_digest
from repro.engine.service import SolveTask, _effective_key
from repro.engine.store import CODECS


def _backends() -> list[str]:
    names = ["numpy"]
    if available_backends()["cext"] == "resolves to cext":
        names.append("compiled")
    return names


BACKENDS = _backends()

#: Spawned children import this module fresh — no inherited state, the
#: same isolation the serve daemon's workers have.
_CTX = multiprocessing.get_context("spawn")


def _value_for(i: int) -> dict:
    """The deterministic 'solve' result for key i — every writer that
    lands key i writes bit-identical content, like real content-keyed
    tasks do."""
    return {"v": np.linspace(0.0, float(i), 5), "i": np.asarray(i)}


def _key_for(i: int) -> tuple:
    return ("conc/1", int(i))


def _task_for(i: int) -> SolveTask:
    return SolveTask(
        fn=_value_for, args=(int(i),), key=_key_for(i), codec="ndarrays"
    )


def _writer(root: str, indices: list[int]) -> None:
    """One writer process: read-through then write its slice of keys."""
    store = SolveStore(root)
    for i in indices:
        if store.get(_key_for(i)) is None:
            store.put(_key_for(i), _value_for(i), codec="ndarrays")


def _crashing_writer(root: str, i: int) -> None:
    """A writer killed between the artifact and its sidecar.

    Patches the store's atomic-write helper so the manifest rename —
    the commit point — never happens: the process dies with the ``.npz``
    on disk and no ``.json``, the exact footprint of a mid-write crash.
    """
    store = SolveStore(root)
    original = store._write_atomic

    def dying(directory, path, write):
        if str(path).endswith(".json"):
            os._exit(1)
        return original(directory, path, write)

    store._write_atomic = dying
    store.put(_key_for(i), _value_for(i), codec="ndarrays")
    os._exit(0)  # unreachable


def _run_writers(root, slices):
    procs = [
        _CTX.Process(target=_writer, args=(str(root), list(chunk)))
        for chunk in slices
    ]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(120)
        assert proc.exitcode == 0
    return procs


def _overlapping_slices(keys: int, writers: int) -> list[list[int]]:
    """Each writer gets ~2/3 of the key space, rotated so every pair of
    neighbours overlaps and every key has at least two writers."""
    span = max(1, (2 * keys) // 3)
    return [
        [(start + j) % keys for j in range(span)]
        for start in range(0, keys, max(1, keys // writers))
    ][:writers]


def _assert_settled(root, keys: int) -> None:
    """No torn entries, no duplicates, index == scan, replay == 0 solves."""
    store = SolveStore(root)
    # Every key decodes to exactly the content any single writer produced.
    for i in range(keys):
        value = store.get(_key_for(i))
        assert value is not None, f"key {i} missing after settling"
        expected = _value_for(i)
        assert value["v"].tobytes() == expected["v"].tobytes()
        assert int(value["i"]) == i
    # One committed entry per key — concurrent writers never duplicated.
    assert len(store) == keys
    assert store.stats()["entries"] == keys
    # The rebuilt index is exactly the directory scan.
    index = store.rebuild_index()
    scan = store.scan_entries()
    assert index["entries"] == scan
    assert set(scan) == {key_digest(_key_for(i)) for i in range(keys)}
    assert store.load_index() == index


class TestConcurrentWriters:
    def test_overlapping_writers_settle_clean(self, tmp_path):
        keys, writers = 12, 4
        _run_writers(tmp_path, _overlapping_slices(keys, writers))
        # Stragglers: make sure every key was covered by someone.
        _writer(str(tmp_path), list(range(keys)))
        _assert_settled(tmp_path, keys)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_warm_replay_computes_nothing(self, tmp_path, backend):
        keys = 10
        with use_backend(backend):
            # Writers under this backend's key namespace: go through a
            # real service so keys carry the backend cache tag.
            warm = SolveService(
                cache=SolveCache(), store=SolveStore(tmp_path), executor="serial"
            )
            warm.map([_task_for(i) for i in range(keys)])
            assert warm.counters.computed == keys
            # A fresh process-like replay of the same overlapping set:
            # zero duplicate solves after settling.
            replay = SolveService(
                cache=SolveCache(), store=SolveStore(tmp_path), executor="serial"
            )
            values = replay.map([_task_for(i) for i in range(keys)])
            assert replay.counters.computed == 0
            assert replay.counters.store_hits == keys
            for i, value in enumerate(values):
                assert value["v"].tobytes() == _value_for(i)["v"].tobytes()

    @pytest.mark.slow
    def test_many_writers_many_keys(self, tmp_path):
        keys, writers = 200, 8
        _run_writers(tmp_path, _overlapping_slices(keys, writers))
        _writer(str(tmp_path), list(range(keys)))
        _assert_settled(tmp_path, keys)


def _corrupt_truncate_npz(root, digest):
    path = root / digest[:2] / f"{digest}.npz"
    path.write_bytes(path.read_bytes()[:24])


def _corrupt_mismatched_sidecar(root, digest):
    # The manifest promises arrays the artifact does not hold.
    path = root / digest[:2] / f"{digest}.json"
    manifest = json.loads(path.read_text())
    manifest["arrays"] = ["v.v", "v.i", "v.ghost"]
    manifest["meta"]["names"] = ["v", "i", "ghost"]
    path.write_text(json.dumps(manifest))


def _corrupt_version_skew(root, digest):
    path = root / digest[:2] / f"{digest}.json"
    manifest = json.loads(path.read_text())
    manifest["version"] = 999
    path.write_text(json.dumps(manifest))


def _corrupt_unknown_codec(root, digest):
    path = root / digest[:2] / f"{digest}.json"
    manifest = json.loads(path.read_text())
    manifest["codec"] = "not-a-codec"
    path.write_text(json.dumps(manifest))


def _corrupt_garbage_manifest(root, digest):
    (root / digest[:2] / f"{digest}.json").write_text("{torn mid-write")


def _corrupt_missing_artifact(root, digest):
    (root / digest[:2] / f"{digest}.npz").unlink()


CORRUPTIONS = {
    "truncated-npz": _corrupt_truncate_npz,
    "mismatched-sidecar": _corrupt_mismatched_sidecar,
    "version-skew": _corrupt_version_skew,
    "unknown-codec": _corrupt_unknown_codec,
    "garbage-manifest": _corrupt_garbage_manifest,
    "missing-artifact": _corrupt_missing_artifact,
}


@pytest.mark.parametrize("backend", BACKENDS)
class TestFaultInjection:
    """Every corruption is a miss and a recompute repairs it — no crash."""

    @pytest.mark.parametrize("case", sorted(CORRUPTIONS))
    def test_corruption_matrix(self, tmp_path, backend, case):
        with use_backend(backend):
            # The key as the service stores it — compiled backends
            # namespace entries under their kernel tag.
            key = _effective_key(_task_for(3))
            store = SolveStore(tmp_path)
            assert store.put(key, _value_for(3), codec="ndarrays")
            digest = key_digest(key)
            CORRUPTIONS[case](tmp_path, digest)
            assert store.get(key) is None, case
            # miss-and-recompute through the service: the entry heals.
            service = SolveService(
                cache=SolveCache(), store=store, executor="serial"
            )
            value = service.run(_task_for(3))
            assert value["v"].tobytes() == _value_for(3)["v"].tobytes()
            assert service.counters.computed == 1
            healed = SolveStore(tmp_path).get(key)
            assert healed is not None
            assert healed["v"].tobytes() == _value_for(3)["v"].tobytes()

    def test_midwrite_crash_is_miss_then_pruned(self, tmp_path, backend):
        with use_backend(backend):
            proc = _CTX.Process(
                target=_crashing_writer, args=(str(tmp_path), 7)
            )
            proc.start()
            proc.join(120)
            assert proc.exitcode == 1  # died between artifact and sidecar
            digest = key_digest(_key_for(7))
            assert (tmp_path / digest[:2] / f"{digest}.npz").is_file()
            assert not (tmp_path / digest[:2] / f"{digest}.json").exists()
            store = SolveStore(tmp_path)
            assert store.get(_key_for(7)) is None  # uncommitted = miss
            assert len(store) == 0
            # prune sweeps the orphan; a recompute then lands cleanly.
            assert store.prune()["orphans"] == 1
            assert not (tmp_path / digest[:2] / f"{digest}.npz").exists()
            assert store.put(_key_for(7), _value_for(7), codec="ndarrays")
            assert store.get(_key_for(7)) is not None


class TestMaintenanceUnderLock:
    def test_concurrent_rebuilds_and_writes(self, tmp_path):
        """Index rebuilds racing writers must never crash and the final
        rebuild must match the final tree."""
        keys = 16
        writers = _overlapping_slices(keys, 3)
        procs = [
            _CTX.Process(target=_writer, args=(str(tmp_path), list(chunk)))
            for chunk in writers
        ]
        for proc in procs:
            proc.start()
        store = SolveStore(tmp_path)
        for _ in range(10):  # rebuild while writers are live
            store.rebuild_index()
        for proc in procs:
            proc.join(120)
            assert proc.exitcode == 0
        _writer(str(tmp_path), list(range(keys)))
        _assert_settled(tmp_path, keys)
