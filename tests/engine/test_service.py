"""Unit tests for the solve service (task scheduling + two-tier cache)."""

import numpy as np
import pytest

from repro.engine import GridEngine, SolveCache, SolveStore
from repro.engine.grid_engine import cap_row_task
from repro.engine.service import (
    SolveService,
    SolveTask,
    default_service,
    run_task,
    set_default_service,
)
from repro.providers import AccessISP, Market, exponential_cp

# A module-level pure function so tasks pickle for the pool tests.
def _square(x, *, offset=0.0):
    return {"value": np.asarray(x * x + offset, dtype=float)}


def _square_task(x, offset=0.0):
    return SolveTask(
        fn=_square,
        args=(float(x),),
        kwargs=(("offset", float(offset)),),
        key=("square/1", float(x), float(offset)),
        codec="ndarrays",
    )


def small_market():
    return Market(
        [
            exponential_cp(2.0, 2.0, value=1.0),
            exponential_cp(5.0, 3.0, value=0.6),
        ],
        AccessISP(price=1.0, capacity=1.0),
    )


class TestSolveTask:
    def test_run_task_applies_args_and_kwargs(self):
        assert float(run_task(_square_task(3.0, offset=1.0))["value"]) == 10.0

    def test_unknown_codec_fails_at_construction(self):
        with pytest.raises(KeyError):
            SolveTask(fn=_square, args=(1.0,), key=("k",), codec="nope")


class TestTwoTierResolution:
    def test_memory_tier_hit(self):
        service = SolveService(cache=SolveCache())
        first = service.run(_square_task(2.0))
        second = service.run(_square_task(2.0))
        assert second is first  # identity: memory tier returns the object
        assert service.counters.computed == 1
        assert service.counters.memory_hits == 1

    def test_store_tier_survives_process_cache(self, tmp_path):
        warm = SolveService(cache=SolveCache(), store=SolveStore(tmp_path))
        value = warm.run(_square_task(3.0))
        # A "new process": fresh memory tier, same store directory.
        cold = SolveService(cache=SolveCache(), store=SolveStore(tmp_path))
        replay = cold.run(_square_task(3.0))
        assert replay["value"].tobytes() == value["value"].tobytes()
        assert cold.counters.computed == 0
        assert cold.counters.store_hits == 1
        # The store hit was promoted into memory: third call is a memory hit.
        cold.run(_square_task(3.0))
        assert cold.counters.memory_hits == 1

    def test_unkeyed_tasks_always_compute(self):
        service = SolveService(cache=SolveCache())
        task = SolveTask(fn=_square, args=(2.0,), key=None, codec="ndarrays")
        service.run(task)
        service.run(task)
        assert service.counters.computed == 2

    def test_no_tiers_always_computes(self):
        service = SolveService()
        service.run(_square_task(2.0))
        service.run(_square_task(2.0))
        assert service.counters.computed == 2

    def test_clear_memory_keeps_store(self, tmp_path):
        service = SolveService(cache=SolveCache(), store=SolveStore(tmp_path))
        service.run(_square_task(5.0))
        service.clear_memory()
        service.run(_square_task(5.0))
        assert service.counters.store_hits == 1
        assert service.counters.computed == 1

    def test_stats_shape(self, tmp_path):
        service = SolveService(cache=SolveCache(), store=SolveStore(tmp_path))
        service.run(_square_task(1.0))
        stats = service.stats()
        assert stats["computed"] == 1
        assert stats["memory_entries"] == 1
        assert stats["store"]["entries"] == 1
        assert SolveService().stats()["store"] is None

    def test_reset_counters(self, tmp_path):
        service = SolveService(cache=SolveCache(), store=SolveStore(tmp_path))
        service.run(_square_task(1.0))
        service.reset_counters()
        assert service.counters.computed == 0
        assert service.stats()["store"]["writes"] == 0


class TestMap:
    def test_order_preserved_with_mixed_hits(self):
        service = SolveService(cache=SolveCache())
        service.run(_square_task(1.0))
        values = service.map([_square_task(x) for x in (0.0, 1.0, 2.0, 3.0)])
        assert [float(v["value"]) for v in values] == [0.0, 1.0, 4.0, 9.0]
        assert service.counters.memory_hits == 1
        assert service.counters.computed == 4  # 1 pre-warmed + 3 new

    def test_pool_and_sequential_schedules_are_bitwise_equal(self):
        market = small_market()
        prices = np.linspace(0.1, 1.0, 3)
        tasks = lambda: [  # noqa: E731
            cap_row_task(market, prices, cap) for cap in (0.0, 0.4, 0.8, 1.2)
        ]
        sequential = SolveService().map(tasks(), workers=1)
        pooled = SolveService().map(tasks(), workers=4)
        for row_a, row_b in zip(sequential, pooled):
            for a, b in zip(row_a, row_b):
                assert a.subsidies.tobytes() == b.subsidies.tobytes()
                assert a.state.utilization == b.state.utilization

    def test_pool_results_are_committed_to_both_tiers(self, tmp_path):
        service = SolveService(cache=SolveCache(), store=SolveStore(tmp_path))
        market = small_market()
        prices = np.linspace(0.1, 1.0, 3)
        tasks = [cap_row_task(market, prices, cap) for cap in (0.0, 0.5)]
        service.map(tasks, workers=2)
        assert service.counters.computed == 2
        service.map(tasks, workers=2)
        assert service.counters.memory_hits == 2
        assert len(service.store) == 2

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            SolveService().map([_square_task(1.0)], workers=0)
        with pytest.raises(ValueError):
            SolveService(workers=0)


class TestDefaultService:
    def test_shared_and_replaceable(self):
        try:
            shared = default_service()
            assert default_service() is shared
            mine = SolveService(cache=SolveCache())
            set_default_service(mine)
            assert default_service() is mine
        finally:
            set_default_service(None)
        rebuilt = default_service()
        assert rebuilt is not mine

    def test_grid_engine_binds_to_a_service(self, tmp_path):
        service = SolveService(cache=SolveCache(), store=SolveStore(tmp_path))
        engine = GridEngine(cache=SolveCache(), service=service)
        assert engine.service is service
        grid = engine.solve_grid(
            small_market(), np.linspace(0.1, 1.0, 3), np.array([0.0, 0.5])
        )
        assert service.counters.computed == 2
        # A private (unbound) engine computes rows itself, cold.
        cold = GridEngine()
        regrid = cold.solve_grid(
            small_market(), np.linspace(0.1, 1.0, 3), np.array([0.0, 0.5])
        )
        assert cold.service.counters.computed == 2
        for k in range(2):
            for j in range(3):
                assert (
                    grid.at(k, j).subsidies.tobytes()
                    == regrid.at(k, j).subsidies.tobytes()
                )
