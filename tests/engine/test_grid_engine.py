"""The parallel grid engine: scheduling, equality, warm starts, caching."""

import numpy as np
import pytest

from repro.analysis.sweeps import policy_grid, price_sweep
from repro.core.equilibrium import DEFAULT_CERTIFY_TOL
from repro.engine import (
    GridEngine,
    SolveCache,
    get_default_workers,
    set_default_workers,
)
from repro.exceptions import ModelError

PRICES = np.linspace(0.3, 1.2, 4)
CAPS = np.array([0.0, 0.6])


def _grid_payload(grid):
    """Everything observable about a grid, for exact comparisons."""
    return {
        "revenue": grid.quantity(lambda eq: eq.state.revenue),
        "welfare": grid.quantity(lambda eq: eq.state.welfare),
        "throughputs": grid.provider_quantity(lambda eq: eq.state.throughputs),
        "subsidies": grid.provider_quantity(lambda eq: eq.subsidies),
        "utilization": grid.quantity(lambda eq: eq.state.utilization),
    }


class TestParallelEqualsSequential:
    def test_bitwise_equal_grids(self, two_cp_market):
        sequential = GridEngine(workers=1).solve_grid(
            two_cp_market, PRICES, CAPS
        )
        parallel = GridEngine(workers=2).solve_grid(two_cp_market, PRICES, CAPS)
        seq, par = _grid_payload(sequential), _grid_payload(parallel)
        for name in seq:
            np.testing.assert_array_equal(
                seq[name], par[name], err_msg=f"{name} differs"
            )

    def test_policy_grid_workers_flag(self, two_cp_market):
        sequential = policy_grid(two_cp_market, PRICES, CAPS)
        parallel = policy_grid(two_cp_market, PRICES, CAPS, workers=2)
        np.testing.assert_array_equal(
            _grid_payload(sequential)["subsidies"],
            _grid_payload(parallel)["subsidies"],
        )


class TestWarmStartCorrectness:
    def test_price_sweep_warm_equals_cold_across_caps(self, two_cp_market):
        # Satellite acceptance: warm-started sweeps must land on the same
        # certified equilibria as cold starts, across a cap change.
        for cap in (0.4, 0.9):
            warm = price_sweep(two_cp_market, PRICES, cap=cap, warm_start=True)
            cold = price_sweep(two_cp_market, PRICES, cap=cap, warm_start=False)
            for a, b in zip(warm, cold):
                assert a.kkt_residual <= DEFAULT_CERTIFY_TOL
                assert b.kkt_residual <= DEFAULT_CERTIFY_TOL
                np.testing.assert_allclose(
                    a.subsidies, b.subsidies, atol=DEFAULT_CERTIFY_TOL
                )

    def test_parallel_engine_warm_equals_cold(self, two_cp_market):
        warm = GridEngine(workers=2).solve_grid(
            two_cp_market, PRICES, CAPS, warm_start=True
        )
        cold = GridEngine(workers=2).solve_grid(
            two_cp_market, PRICES, CAPS, warm_start=False
        )
        np.testing.assert_allclose(
            _grid_payload(warm)["subsidies"],
            _grid_payload(cold)["subsidies"],
            atol=DEFAULT_CERTIFY_TOL,
        )

    def test_every_grid_node_is_certified(self, two_cp_market):
        engine = GridEngine()
        grid = engine.solve_grid(two_cp_market, PRICES, CAPS)
        residuals = engine.certify_grid(two_cp_market, grid)
        assert residuals.shape == (CAPS.size, PRICES.size)
        assert np.all(residuals <= DEFAULT_CERTIFY_TOL)


class TestEngineCache:
    def test_cache_hit_returns_same_object(self, two_cp_market):
        engine = GridEngine(cache=SolveCache())
        first = engine.solve_grid(two_cp_market, PRICES, CAPS)
        second = engine.solve_grid(two_cp_market, PRICES, CAPS)
        assert first is second
        assert engine.cache.hits == 1

    def test_content_keying_survives_market_rebuild(self, two_cp_market):
        from repro.providers import Market

        engine = GridEngine(cache=SolveCache())
        first = engine.solve_grid(two_cp_market, PRICES, CAPS)
        rebuilt = Market(two_cp_market.providers, two_cp_market.isp)
        second = engine.solve_grid(rebuilt, PRICES, CAPS)
        assert first is second

    def test_axis_change_misses(self, two_cp_market):
        engine = GridEngine(cache=SolveCache())
        first = engine.solve_grid(two_cp_market, PRICES, CAPS)
        second = engine.solve_grid(two_cp_market, PRICES[:-1], CAPS)
        assert first is not second

    def test_cacheless_engine_recomputes(self, two_cp_market):
        engine = GridEngine()
        assert engine.cache is None
        first = engine.solve_grid(two_cp_market, PRICES, CAPS)
        second = engine.solve_grid(two_cp_market, PRICES, CAPS)
        assert first is not second


class TestConfiguration:
    def test_default_workers_resolution(self, monkeypatch):
        set_default_workers(None)
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert get_default_workers() == 1
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert get_default_workers() == 3
        set_default_workers(2)
        try:
            assert get_default_workers() == 2
        finally:
            set_default_workers(None)

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            GridEngine(workers=0)
        with pytest.raises(ValueError):
            set_default_workers(0)
        with pytest.raises(ValueError):
            GridEngine().resolve_workers(0)

    def test_axis_validation(self, two_cp_market):
        engine = GridEngine()
        with pytest.raises(ModelError):
            engine.solve_grid(two_cp_market, [], CAPS)
        with pytest.raises(ModelError):
            engine.solve_grid(two_cp_market, PRICES, [])
