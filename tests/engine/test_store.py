"""Unit tests for the persistent content-addressed solve store."""

import json

import numpy as np
import pytest

from repro.engine.grid_engine import solve_cap_row
from repro.engine.store import CODECS, SolveStore, key_digest
from repro.providers import AccessISP, Market, exponential_cp


def small_market():
    return Market(
        [
            exponential_cp(2.0, 2.0, value=1.0),
            exponential_cp(5.0, 3.0, value=0.6),
        ],
        AccessISP(price=1.0, capacity=1.0),
    )


def solved_row():
    return solve_cap_row(
        small_market(), np.linspace(0.2, 1.0, 3), 0.5, warm_start=True
    )


def entry_files(root):
    """(manifests, arrays) across both the sharded and flat layouts."""
    manifests = sorted(
        p for p in root.rglob("*.json") if len(p.stem) == 64
    )
    arrays = sorted(p for p in root.rglob("*.npz") if len(p.stem) == 64)
    return manifests, arrays


def sole_manifest(root):
    manifests, _ = entry_files(root)
    assert len(manifests) == 1
    return manifests[0]


def assert_rows_bitwise_equal(a, b):
    assert len(a) == len(b)
    for x, y in zip(a, b):
        assert x.subsidies.tobytes() == y.subsidies.tobytes()
        assert x.kkt_residual == y.kkt_residual
        assert x.iterations == y.iterations
        assert x.method == y.method
        for field in (
            "subsidies",
            "effective_prices",
            "populations",
            "rates",
            "throughputs",
            "utilities",
        ):
            assert (
                getattr(x.state, field).tobytes()
                == getattr(y.state, field).tobytes()
            )
        for field in (
            "utilization",
            "revenue",
            "welfare",
            "gap_slope",
            "price",
            "capacity",
        ):
            assert getattr(x.state, field) == getattr(y.state, field)


class TestKeyDigest:
    def test_deterministic_and_content_sensitive(self):
        key = ("cap-row/1", "fp", b"\x00\x01", 0.5, True)
        assert key_digest(key) == key_digest(key)
        assert key_digest(key) != key_digest(("cap-row/1", "fp", b"\x00\x01", 0.5, False))
        assert key_digest(key) != key_digest(("cap-row/1", "fp", b"\x00\x02", 0.5, True))

    def test_nested_tuples_and_none(self):
        a = key_digest(("x", ((0, 1), (2,), ()), None))
        b = key_digest(("x", ((0, 1), (2,), ()), None))
        c = key_digest(("x", ((0, 1), (2,), (3,)), None))
        assert a == b != c

    def test_type_distinctions(self):
        # bool/int/float/str/bytes with "equal" surface values stay distinct.
        assert key_digest((1,)) != key_digest((1.0,))
        assert key_digest((True,)) != key_digest((1,))
        assert key_digest(("1",)) != key_digest((1,))

    def test_rejects_unhashable_content(self):
        with pytest.raises(TypeError):
            key_digest((object(),))

    def test_encoding_is_injective_for_adversarial_byte_content(self):
        # Keys embed raw float buffers (prices.tobytes()), which can
        # contain any byte sequence — including ones that would collide
        # under separator-based (rather than length-prefixed) encodings.
        assert key_digest(((b"x\x1fb:y",),)) != key_digest(((b"x", b"y"),))
        assert key_digest((b"x\x1eb:y",)) != key_digest((b"x", b"y"))
        assert key_digest(("ab", "c")) != key_digest(("a", "bc"))
        assert key_digest((("a",), "b")) != key_digest((("a", "b"),))


class TestRoundTrip:
    def test_grid_row_round_trip_is_bitwise(self, tmp_path):
        store = SolveStore(tmp_path)
        row = solved_row()
        key = ("row", b"axes", 0.5)
        assert store.put(key, row, codec="grid-row")
        loaded = store.get(key)
        assert loaded is not None
        assert_rows_bitwise_equal(row, loaded)
        assert store.hits == 1 and store.writes == 1

    def test_ndarrays_round_trip(self, tmp_path):
        store = SolveStore(tmp_path)
        value = {
            "price": np.asarray(0.1 + 0.2, dtype=float),
            "warm": np.linspace(0.0, 1.0, 5),
            "count": np.asarray(7, dtype=np.int64),
        }
        store.put(("nd",), value, codec="ndarrays")
        loaded = store.get(("nd",))
        assert set(loaded) == set(value)
        for name in value:
            assert loaded[name].tobytes() == value[name].tobytes()
            assert loaded[name].dtype == value[name].dtype

    def test_json_round_trip_exact_floats(self, tmp_path):
        store = SolveStore(tmp_path)
        value = {"price": 0.1 + 0.2, "after": [[0, 1], [2], []]}
        store.put(("j",), value, codec="json")
        loaded = store.get(("j",))
        assert loaded["price"] == value["price"]  # repr round-trip is exact
        assert loaded["after"] == value["after"]

    def test_missing_key_misses(self, tmp_path):
        store = SolveStore(tmp_path)
        assert store.get(("absent",)) is None
        assert store.misses == 1

    def test_overwrite_replaces(self, tmp_path):
        store = SolveStore(tmp_path)
        store.put(("k",), {"v": [1]}, codec="json")
        store.put(("k",), {"v": [2]}, codec="json")
        assert store.get(("k",))["v"] == [2]
        assert len(store) == 1


class TestCorruptionTolerance:
    """Bad entry -> miss, never crash; recompute-and-put repairs."""

    def _entry_paths(self, tmp_path):
        manifests, arrays = entry_files(tmp_path)
        assert len(manifests) == 1 and len(arrays) == 1
        return manifests[0], arrays[0]

    def test_truncated_npz_is_a_miss_then_repairable(self, tmp_path):
        store = SolveStore(tmp_path)
        row = solved_row()
        key = ("row", 1)
        store.put(key, row, codec="grid-row")
        _, npz = self._entry_paths(tmp_path)
        npz.write_bytes(npz.read_bytes()[:20])
        assert store.get(key) is None
        assert store.misses == 1
        # The caller recomputes and overwrites; the entry works again.
        assert store.put(key, row, codec="grid-row")
        assert_rows_bitwise_equal(row, store.get(key))

    def test_garbage_manifest_is_a_miss(self, tmp_path):
        store = SolveStore(tmp_path)
        store.put(("k",), solved_row(), codec="grid-row")
        manifest, _ = self._entry_paths(tmp_path)
        manifest.write_text("{not json at all")
        assert store.get(("k",)) is None

    def test_manifest_without_arrays_is_a_miss(self, tmp_path):
        store = SolveStore(tmp_path)
        store.put(("k",), solved_row(), codec="grid-row")
        _, npz = self._entry_paths(tmp_path)
        npz.unlink()
        assert store.get(("k",)) is None

    def test_version_skew_is_a_miss(self, tmp_path):
        store = SolveStore(tmp_path)
        store.put(("k",), {"v": 1}, codec="json")
        manifest = sole_manifest(tmp_path)
        payload = json.loads(manifest.read_text())
        payload["version"] = 999
        manifest.write_text(json.dumps(payload))
        assert store.get(("k",)) is None

    def test_unknown_codec_in_manifest_is_a_miss(self, tmp_path):
        store = SolveStore(tmp_path)
        store.put(("k",), {"v": 1}, codec="json")
        manifest = sole_manifest(tmp_path)
        payload = json.loads(manifest.read_text())
        payload["codec"] = "no-such-codec"
        manifest.write_text(json.dumps(payload))
        assert store.get(("k",)) is None

    def test_unwritable_root_degrades_to_no_store(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file, not a directory")
        store = SolveStore(blocker / "sub")
        assert store.put(("k",), {"v": 1}, codec="json") is False
        assert store.write_errors == 1
        assert store.get(("k",)) is None  # still just a miss


class TestMaintenance:
    def test_put_unknown_codec_raises(self, tmp_path):
        store = SolveStore(tmp_path)
        with pytest.raises(KeyError):
            store.put(("k",), {"v": 1}, codec="nope")

    def test_codec_value_mismatch_raises(self, tmp_path):
        store = SolveStore(tmp_path)
        with pytest.raises(TypeError):
            store.put(("k",), {"v": "not an array"}, codec="ndarrays")
        with pytest.raises(TypeError):
            store.put(("k",), ("not", "results"), codec="grid-row")

    def test_clear_removes_everything(self, tmp_path):
        store = SolveStore(tmp_path)
        store.put(("a",), {"v": 1}, codec="json")
        store.put(("b",), solved_row(), codec="grid-row")
        assert len(store) == 2
        assert store.clear() == 2
        assert len(store) == 0
        assert store.get(("a",)) is None

    def test_clear_on_missing_directory(self, tmp_path):
        assert SolveStore(tmp_path / "never-created").clear() == 0

    def test_stats_shape(self, tmp_path):
        store = SolveStore(tmp_path)
        store.put(("a",), {"v": 1}, codec="json")
        stats = store.stats()
        assert stats["entries"] == 1
        assert stats["bytes"] > 0
        assert stats["path"] == str(tmp_path)
        assert {"hits", "misses", "writes", "write_errors"} <= set(stats)

    def test_from_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert SolveStore.from_env() is None
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        store = SolveStore.from_env()
        assert store is not None and store.path == tmp_path

    def test_codec_registry_is_closed(self):
        assert set(CODECS) == {"grid-row", "ndarrays", "json"}


def flat_put(root, key, value, *, codec):
    """Write an entry in the pre-sharding flat layout (legacy stores)."""
    staging = SolveStore(root / "_staging")
    assert staging.put(key, value, codec=codec)
    digest = key_digest(key)
    for suffix in (".npz", ".json"):
        sharded = root / "_staging" / digest[:2] / f"{digest}{suffix}"
        if sharded.is_file():
            sharded.rename(root / f"{digest}{suffix}")
    return digest


class TestShardedLayout:
    def test_entries_land_in_first_byte_shards(self, tmp_path):
        store = SolveStore(tmp_path)
        key = ("sharded", 1)
        store.put(key, {"v": 1}, codec="json")
        digest = key_digest(key)
        assert (tmp_path / digest[:2] / f"{digest}.json").is_file()
        assert not (tmp_path / f"{digest}.json").exists()

    def test_flat_legacy_entry_reads_and_migrates(self, tmp_path):
        key = ("legacy", 1)
        row = solved_row()
        digest = flat_put(tmp_path, key, row, codec="grid-row")
        store = SolveStore(tmp_path)
        loaded = store.get(key)
        assert_rows_bitwise_equal(row, loaded)
        assert store.hits == 1
        # The hit migrated the entry into its shard.
        assert (tmp_path / digest[:2] / f"{digest}.json").is_file()
        assert (tmp_path / digest[:2] / f"{digest}.npz").is_file()
        assert not (tmp_path / f"{digest}.json").exists()
        assert not (tmp_path / f"{digest}.npz").exists()
        # And it still reads after migration.
        assert_rows_bitwise_equal(row, store.get(key))

    def test_put_shadows_flat_predecessor(self, tmp_path):
        key = ("shadow", 1)
        digest = flat_put(tmp_path, key, {"v": "old"}, codec="json")
        store = SolveStore(tmp_path)
        store.put(key, {"v": "new"}, codec="json")
        assert store.get(key)["v"] == "new"
        assert not (tmp_path / f"{digest}.json").exists()
        assert len(store) == 1

    def test_len_clear_and_stats_span_both_layouts(self, tmp_path):
        flat_put(tmp_path, ("flat",), {"v": 1}, codec="json")
        store = SolveStore(tmp_path)
        store.put(("sharded",), {"v": 2}, codec="json")
        assert len(store) == 2
        stats = store.stats()
        assert stats["entries"] == 2
        assert stats["flat_entries"] == 1
        assert stats["shards"] >= 1
        assert store.clear() == 2
        assert len(store) == 0

    def test_corrupt_sharded_entry_is_a_miss(self, tmp_path):
        store = SolveStore(tmp_path)
        key = ("corrupt-shard", 1)
        store.put(key, solved_row(), codec="grid-row")
        digest = key_digest(key)
        npz = tmp_path / digest[:2] / f"{digest}.npz"
        npz.write_bytes(npz.read_bytes()[:16])
        assert store.get(key) is None
        # Recompute-and-put repairs in place.
        assert store.put(key, solved_row(), codec="grid-row")
        assert store.get(key) is not None


class TestIndex:
    def test_rebuild_index_matches_directory_scan(self, tmp_path):
        store = SolveStore(tmp_path)
        store.put(("a",), {"v": 1}, codec="json")
        store.put(("b",), solved_row(), codec="grid-row")
        flat_put(tmp_path, ("c",), {"v": 3}, codec="json")
        index = store.rebuild_index()
        assert set(index["entries"]) == set(store.scan_entries())
        assert len(index["entries"]) == 3
        for record in index["entries"].values():
            assert record["codec"] in CODECS
            assert record["bytes"] > 0
        # The written catalog round-trips.
        assert store.load_index() == index

    def test_load_index_absent_or_garbage_is_none(self, tmp_path):
        store = SolveStore(tmp_path)
        assert store.load_index() is None
        tmp_path.mkdir(exist_ok=True)
        store.index_path.write_text("{broken")
        assert store.load_index() is None

    def test_index_never_shadows_entries(self, tmp_path):
        # index.json is not digest-named, so clear/len ignore it as an
        # entry but clear still removes the stale catalog.
        store = SolveStore(tmp_path)
        store.put(("a",), {"v": 1}, codec="json")
        store.rebuild_index()
        assert len(store) == 1
        store.clear()
        assert not store.index_path.exists()


class TestPrune:
    def test_prune_removes_orphans_and_temps(self, tmp_path):
        store = SolveStore(tmp_path)
        store.put(("keep",), solved_row(), codec="grid-row")
        digest = key_digest(("keep",))
        shard = tmp_path / digest[:2]
        # An orphan artifact: a writer died before the manifest rename.
        (shard / ("f" * 64 + ".npz")).write_bytes(b"partial")
        (shard / "tmpabc123.tmp").write_bytes(b"scratch")
        summary = store.prune()
        assert summary == {"entries": 0, "orphans": 1, "temp_files": 1}
        assert store.get(("keep",)) is not None

    def test_prune_max_entries_evicts_oldest(self, tmp_path):
        import os as _os

        store = SolveStore(tmp_path)
        for i in range(4):
            key = (f"k{i}",)
            store.put(key, {"v": i}, codec="json")
            manifest = tmp_path / key_digest(key)[:2] / (
                key_digest(key) + ".json"
            )
            _os.utime(manifest, (1000.0 + i, 1000.0 + i))
        summary = store.prune(max_entries=2)
        assert summary["entries"] == 2
        assert len(store) == 2
        assert store.get(("k0",)) is None and store.get(("k1",)) is None
        assert store.get(("k2",)) is not None
        assert store.get(("k3",)) is not None

    def test_prune_max_bytes(self, tmp_path):
        store = SolveStore(tmp_path)
        for i in range(3):
            store.put((f"k{i}",), {"v": "x" * 64}, codec="json")
        assert store.prune(max_bytes=0)["entries"] == 3
        assert len(store) == 0

    def test_prune_rejects_negative_bounds(self, tmp_path):
        with pytest.raises(ValueError):
            SolveStore(tmp_path).prune(max_entries=-1)

    def test_prune_missing_directory(self, tmp_path):
        summary = SolveStore(tmp_path / "never").prune(max_entries=1)
        assert summary == {"entries": 0, "orphans": 0, "temp_files": 0}
