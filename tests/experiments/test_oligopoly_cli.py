"""The runner's oligopoly verb."""

import json

import pytest

from repro.experiments.grid import reset_engine
from repro.experiments.runner import main


@pytest.fixture(autouse=True)
def fresh_default_service():
    """Each test starts (and leaves) a clean process-wide service.

    Without this, a verb run without ``--cache-dir`` memoizes its sweeps
    in the shared default service and a later test's identical scenario
    resolves as memory hits — ``computed`` counters would depend on test
    order.
    """
    reset_engine(service=None)
    yield
    reset_engine(service=None)
from repro.io import save_scenario
from repro.providers import AccessISP, Market, exponential_cp
from repro.scenarios import ScenarioSpec, oligopoly


@pytest.fixture
def scenario_file(tmp_path):
    """A 1-CP, 2-carrier competition scenario with coarse solve settings."""
    base = ScenarioSpec(
        scenario_id="cli-base",
        title="one CP type",
        market=Market(
            [exponential_cp(2.0, 2.0, value=1.0)],
            AccessISP(price=1.0, capacity=1.0),
        ),
        prices=(0.5, 1.0),
        policy_levels=(0.0,),
    )
    spec = oligopoly(base, 2, cap=0.3, scenario_id="cli-olig")
    metadata = dict(spec.metadata)
    metadata.update(
        {
            "grid_points": 6,
            "xtol": 1e-3,
            "tol": 1e-2,
            "price_range": [0.05, 2.0],
        }
    )
    spec = ScenarioSpec(
        scenario_id=spec.scenario_id,
        title=spec.title,
        market=spec.market,
        prices=spec.prices,
        policy_levels=spec.policy_levels,
        metadata=metadata,
    )
    path = tmp_path / "cli-olig.json"
    save_scenario(spec, path)
    return str(path)


def run_json(argv, capsys):
    code = main(argv)
    out = capsys.readouterr().out
    return code, json.loads(out)


class TestOligopolyVerb:
    def test_json_summary_with_per_carrier_counters(
        self, scenario_file, capsys
    ):
        code, payload = run_json(
            ["oligopoly", "--scenario-file", scenario_file, "--json"], capsys
        )
        assert code == 0
        assert payload["scenario"] == "cli-olig"
        assert payload["carriers"] == 2
        assert payload["mode"] == "gauss-seidel"
        assert payload["converged"] is True
        assert len(payload["prices"]) == 2
        assert len(payload["shares"]) == 2
        assert sum(payload["shares"]) == pytest.approx(1.0)
        assert len(payload["carrier_stats"]) == 2
        for stats in payload["carrier_stats"]:
            assert stats["sweeps"] == payload["iterations"]
            assert stats["solves"] > 0
        assert payload["cache"]["computed"] > 0

    def test_run_oligopoly_routes_to_the_verb(self, scenario_file, capsys):
        code, payload = run_json(
            ["run", "oligopoly", "--scenario-file", scenario_file, "--json"],
            capsys,
        )
        assert code == 0
        assert payload["scenario"] == "cli-olig"

    def test_flag_overrides_metadata(self, scenario_file, capsys):
        code, payload = run_json(
            [
                "oligopoly", "--scenario-file", scenario_file,
                "--carriers", "3", "--mode", "jacobi", "--json",
            ],
            capsys,
        )
        assert code == 0
        assert payload["carriers"] == 3
        assert payload["mode"] == "jacobi"
        assert len(payload["prices"]) == 3

    def test_human_summary(self, scenario_file, capsys):
        code = main(["oligopoly", "--scenario-file", scenario_file])
        out = capsys.readouterr().out
        assert code == 0
        assert "2 carrier(s)" in out
        assert "converged in" in out
        assert "industry revenue" in out
        assert "solve service:" in out

    def test_warm_store_rerun_reports_zero_computed(
        self, scenario_file, tmp_path, capsys
    ):
        store = str(tmp_path / "store")
        argv = [
            "oligopoly", "--scenario-file", scenario_file,
            "--cache-dir", store, "--json",
        ]
        code, cold = run_json(argv, capsys)
        assert code == 0
        assert cold["cache"]["computed"] > 0
        code, warm = run_json(argv, capsys)
        assert code == 0
        assert warm["cache"]["computed"] == 0
        assert warm["cache"]["store_hits"] > 0
        assert warm["prices"] == cold["prices"]

    def test_unknown_scenario_id_fails_cleanly(self, capsys):
        code = main(["oligopoly", "no-such-scenario"])
        err = capsys.readouterr().err
        assert code == 2
        assert "unknown scenario" in err

    def test_unreadable_scenario_file_fails_cleanly(self, tmp_path, capsys):
        code = main(
            ["oligopoly", "--scenario-file", str(tmp_path / "absent.json")]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "cannot load scenario" in err

    def test_non_convergence_exits_one(self, scenario_file, capsys):
        code = main(
            [
                "oligopoly", "--scenario-file", scenario_file,
                "--max-sweeps", "1", "--tol", "1e-12",
            ]
        )
        err = capsys.readouterr().err
        assert code == 1
        assert "FAIL" in err
        assert "not converged" in err

    def test_malformed_metadata_exits_cleanly(self, tmp_path, capsys):
        # Scenario files are user input: bad competition metadata must be
        # a clean usage error, not a traceback.
        from repro.providers import AccessISP, Market, exponential_cp
        from repro.scenarios import ScenarioSpec

        spec = ScenarioSpec(
            scenario_id="bad-meta",
            title="t",
            market=Market(
                [exponential_cp(2.0, 2.0, value=1.0)],
                AccessISP(price=1.0, capacity=1.0),
            ),
            prices=(0.5, 1.0),
            policy_levels=(0.0,),
            metadata={"carriers": 2, "price_range": [1.0]},
        )
        path = tmp_path / "bad.json"
        save_scenario(spec, path)
        with pytest.raises(SystemExit) as excinfo:
            main(["oligopoly", "--scenario-file", str(path)])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "invalid competition settings" in err

    def test_conflicting_cache_flags_rejected(self, scenario_file):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "oligopoly", "--scenario-file", scenario_file,
                    "--no-cache", "--cache-dir", "x",
                ]
            )
        assert excinfo.value.code == 2
