"""The ``dynamics`` sweep kind in the spec-driven pipeline."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.experiments.pipeline import (
    DYNAMICS_QUANTITIES,
    CheckSpec,
    DynamicsView,
    ExperimentSpec,
    PanelSpec,
    dynamics_experiment,
    run_spec,
)
from repro.scenarios import scaled_market, shocked_market, trajectory_variant
from repro.simulation import DynamicsSpec, dynamics_settings, run_trajectory


@pytest.fixture
def tiny_scenario():
    """A 4-CP scenario carrying a short capacity trajectory block."""
    base = scaled_market(
        4,
        prices=(0.5, 1.0, 1.5),
        policy_levels=(0.0, 1.0),
        scenario_id="dyn-pipe-base",
    )
    return trajectory_variant(
        base,
        kind="capacity",
        horizon=3,
        segment_length=2,
        cap=0.5,
        scenario_id="dyn-pipe",
    )


class TestSpecValidation:
    def test_dynamics_panels_must_use_trajectory_quantities(self, tiny_scenario):
        with pytest.raises(ModelError):
            ExperimentSpec(
                experiment_id="x",
                title="x",
                scenario=tiny_scenario,
                sweep="dynamics",
                panels=(
                    PanelSpec(
                        figure_id="x", title="x", quantity="revenue",
                        y_label="R",
                    ),
                ),
            )

    def test_grid_sweeps_reject_dynamics_quantities(self, tiny_scenario):
        with pytest.raises(ModelError):
            ExperimentSpec(
                experiment_id="x",
                title="x",
                scenario=tiny_scenario,
                sweep="grid",
                panels=(
                    PanelSpec(
                        figure_id="x", title="x", quantity="adoption",
                        y_label="m",
                    ),
                ),
            )

    def test_dynamics_forbids_carrier_counts(self, tiny_scenario):
        with pytest.raises(ModelError):
            ExperimentSpec(
                experiment_id="x",
                title="x",
                scenario=tiny_scenario,
                sweep="dynamics",
                panels=(
                    PanelSpec(
                        figure_id="x", title="x", quantity="adoption",
                        y_label="m",
                    ),
                ),
                carrier_counts=(1, 2),
            )

    def test_unknown_panel_quantity_names_all_registries(self):
        with pytest.raises(ModelError, match="dynamics quantities"):
            PanelSpec(figure_id="x", title="x", quantity="nope", y_label="y")


class TestRunSpec:
    def test_dynamics_experiment_end_to_end(self, tiny_scenario):
        result = run_spec(dynamics_experiment(tiny_scenario))
        assert result.experiment_id == "dyn-pipe-dynamics"
        assert result.all_passed()
        ids = [figure.figure_id for figure in result.figures]
        assert "dyn-pipe-adoption" in ids
        assert "dyn-pipe-capacity" in ids
        for figure in result.figures:
            assert figure.x_label == "t"
            assert figure.x.tolist() == [0.0, 1.0, 2.0, 3.0]
            assert len(figure.series) == 1
            assert figure.series[0].y.shape == (4,)

    def test_figures_match_direct_trajectory(self, tiny_scenario):
        result = run_spec(dynamics_experiment(tiny_scenario))
        spec = dynamics_settings(tiny_scenario.metadata)
        trajectory = run_trajectory(tiny_scenario.market, spec)
        by_id = {figure.figure_id: figure for figure in result.figures}
        assert np.array_equal(
            by_id["dyn-pipe-welfare"].series[0].y, trajectory.welfares
        )
        assert np.array_equal(
            by_id["dyn-pipe-capacity"].series[0].y, trajectory.capacities
        )

    def test_plain_scenario_runs_under_defaults(self):
        scn = scaled_market(
            4,
            prices=(0.5, 1.0),
            policy_levels=(0.0,),
            scenario_id="dyn-plain",
        )
        spec = ExperimentSpec(
            experiment_id="dyn-plain-x",
            title="defaults",
            scenario=scn,
            sweep="dynamics",
            panels=(
                PanelSpec(
                    figure_id="dyn-plain-adoption",
                    title="adoption",
                    quantity="adoption",
                    y_label="m",
                ),
            ),
        )
        result = run_spec(spec)
        # The default block: a 20-period capacity trajectory.
        assert result.figures[0].x.size == 21

    def test_malformed_metadata_block_fails_before_solving(self):
        scn = scaled_market(
            4,
            prices=(0.5, 1.0),
            policy_levels=(0.0,),
            scenario_id="dyn-bad",
        )
        bad = type(scn)(
            scenario_id="dyn-bad",
            title=scn.title,
            market=scn.market,
            prices=scn.prices,
            policy_levels=scn.policy_levels,
            metadata={"dynamics": {"format": "nope"}},
        )
        with pytest.raises(ModelError):
            run_spec(dynamics_experiment(bad))

    def test_shocked_scenario_passes_generic_checks(self):
        base = scaled_market(
            4,
            prices=(0.5, 1.0),
            policy_levels=(0.0,),
            scenario_id="dyn-shock-base",
        )
        scn = shocked_market(
            base, seed=11, horizon=4, segment_length=2, n_shocks=2,
            scenario_id="dyn-shock",
        )
        result = run_spec(dynamics_experiment(scn))
        assert result.all_passed()
        # The capacity-monotonicity check only applies unshocked.
        names = [check.name for check in result.checks]
        assert not any("never shrinks" in name for name in names)


class TestDynamicsView:
    def test_scalar_caches_and_validates(self, tiny_scenario):
        spec = dynamics_settings(tiny_scenario.metadata)
        trajectory = run_trajectory(tiny_scenario.market, spec)
        view = DynamicsView(tiny_scenario, spec, trajectory)
        first = view.scalar("adoption")
        assert view.scalar("adoption") is first
        with pytest.raises(ModelError):
            view.scalar("revenue")

    def test_every_quantity_extracts(self, tiny_scenario):
        spec = dynamics_settings(tiny_scenario.metadata)
        trajectory = run_trajectory(tiny_scenario.market, spec)
        view = DynamicsView(tiny_scenario, spec, trajectory)
        for quantity in DYNAMICS_QUANTITIES:
            values = view.scalar(quantity)
            assert values.shape == (spec.horizon + 1,)
            assert np.all(np.isfinite(values))

    def test_check_spec_sees_the_view(self, tiny_scenario):
        spec = ExperimentSpec(
            experiment_id="dyn-check",
            title="check",
            scenario=tiny_scenario,
            sweep="dynamics",
            panels=(
                PanelSpec(
                    figure_id="dyn-check-welfare",
                    title="welfare",
                    quantity="welfare",
                    y_label="W",
                ),
            ),
            checks=(
                CheckSpec(
                    name="welfare stays positive",
                    predicate=lambda v: bool(np.all(v.scalar("welfare") > 0)),
                ),
            ),
        )
        result = run_spec(spec)
        assert result.checks[0].passed
