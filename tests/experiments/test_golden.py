"""Golden regression: spec-driven figures == the pre-refactor data paths.

The figure modules used to orchestrate their own sweeps: Figures 4–5
looped ``market.with_price(p).solve()`` directly, Figures 7–11 read
quantities off a shared :class:`~repro.engine.GridEngine` grid and built
the per-CP panel layout by hand. This test re-implements those legacy data
paths verbatim and asserts the declarative pipeline's CSVs are
**bitwise-identical** to them — the refactor moved orchestration, not
numbers.
"""

import numpy as np
import pytest

from repro.analysis.series import FigureData, Series
from repro.engine import GridEngine
from repro.experiments import fig04, fig05, fig07, fig08, fig09, fig10, fig11
from repro.experiments.scenarios import section3_market, section5_market

PRICES = np.round(np.linspace(0.0, 2.0, 11), 10)
CAPS = (0.0, 1.0, 2.0)


@pytest.fixture(scope="module")
def legacy_price_sweep():
    """The old fig4/fig5 loop: one scalar solve per price point."""
    market = section3_market()
    states = [market.with_price(float(p)).solve() for p in PRICES]
    return market, states


@pytest.fixture(scope="module")
def legacy_grid():
    """The old §5 grid: engine-solved (price × policy) equilibria."""
    market = section5_market()
    grid = GridEngine().solve_grid(market, PRICES, np.asarray(CAPS, dtype=float))
    return market, grid


def legacy_fig4_panels(legacy_price_sweep):
    market, states = legacy_price_sweep
    throughput = np.array([s.aggregate_throughput for s in states])
    revenue = np.array([s.revenue for s in states])
    notes = "Φ=θ/µ, µ=1, λ_i=e^{-β_i φ}, m_i=e^{-α_i p}, α,β ∈ {1,3,5}"
    return (
        FigureData(
            figure_id="fig4-left",
            title="Aggregate throughput θ vs price p (9-CP §3 scenario)",
            x_label="p",
            y_label="θ",
            x=PRICES,
            series=(Series("theta", throughput),),
            notes=notes,
        ),
        FigureData(
            figure_id="fig4-right",
            title="ISP revenue R = p·θ vs price p (9-CP §3 scenario)",
            x_label="p",
            y_label="R",
            x=PRICES,
            series=(Series("revenue", revenue),),
            notes=notes,
        ),
    )


def legacy_fig5_panels(legacy_price_sweep):
    market, states = legacy_price_sweep
    theta = np.stack([s.throughputs for s in states], axis=1)
    names = market.provider_names()
    return (
        FigureData(
            figure_id="fig5",
            title="Per-CP throughput θ_i vs price p (9-CP §3 scenario)",
            x_label="p",
            y_label="θ_i",
            x=PRICES,
            series=tuple(Series(names[i], theta[i]) for i in range(market.size)),
            notes="rows: α ∈ {1,3,5}; cols: β ∈ {1,3,5}",
        ),
    )


def legacy_per_cp_panels(market, grid, values, *, figure_id, quantity, y_label):
    """Verbatim copy of the old fig08._per_cp_figures layout."""
    names = market.provider_names()
    figures = []
    for i in range(market.size):
        series = tuple(
            Series(f"q={grid.caps[k]:g}", values[k, :, i])
            for k in range(grid.caps.size)
        )
        figures.append(
            FigureData(
                figure_id=f"{figure_id}-{names[i]}",
                title=f"{quantity} of {names[i]} vs price p",
                x_label="p",
                y_label=y_label,
                x=grid.prices,
                series=series,
            )
        )
    return tuple(figures)


def assert_csv_identical(new_figures, legacy_figures, tmp_path):
    assert [f.figure_id for f in new_figures] == [
        f.figure_id for f in legacy_figures
    ]
    for new, old in zip(new_figures, legacy_figures):
        new_path = tmp_path / "new" / f"{new.figure_id}.csv"
        old_path = tmp_path / "old" / f"{old.figure_id}.csv"
        new.to_csv(new_path)
        old.to_csv(old_path)
        assert new_path.read_bytes() == old_path.read_bytes(), new.figure_id
        assert new.title == old.title
        assert new.notes == old.notes


class TestPriceSweepFigures:
    def test_fig4_bitwise_identical(self, legacy_price_sweep, tmp_path):
        result = fig04.compute(PRICES)
        assert_csv_identical(
            result.figures, legacy_fig4_panels(legacy_price_sweep), tmp_path
        )

    def test_fig5_bitwise_identical(self, legacy_price_sweep, tmp_path):
        result = fig05.compute(PRICES)
        assert_csv_identical(
            result.figures, legacy_fig5_panels(legacy_price_sweep), tmp_path
        )


class TestGridFigures:
    def test_fig7_bitwise_identical(self, legacy_grid, tmp_path):
        market, grid = legacy_grid
        revenue = grid.quantity(lambda eq: eq.state.revenue)
        welfare = grid.quantity(lambda eq: eq.state.welfare)

        def q_series(matrix):
            return tuple(
                Series(f"q={grid.caps[k]:g}", matrix[k])
                for k in range(grid.caps.size)
            )

        notes = "α,β ∈ {2,5}, v ∈ {0.5,1}, µ=1"
        legacy = (
            FigureData(
                figure_id="fig7-left",
                title="ISP revenue R vs price p at five policy levels "
                "(8-CP §5 scenario)",
                x_label="p",
                y_label="R",
                x=grid.prices,
                series=q_series(revenue),
                notes=notes,
            ),
            FigureData(
                figure_id="fig7-right",
                title="System welfare W vs price p at five policy levels",
                x_label="p",
                y_label="W",
                x=grid.prices,
                series=q_series(welfare),
                notes=notes,
            ),
        )
        result = fig07.compute(PRICES, CAPS)
        assert_csv_identical(result.figures, legacy, tmp_path)

    @pytest.mark.parametrize(
        "module, figure_id, quantity, label, y_label",
        [
            (fig08, "fig8", "subsidies", "Equilibrium subsidy s_i", "s_i"),
            (fig09, "fig9", "populations", "Equilibrium user population m_i", "m_i"),
            (fig10, "fig10", "throughputs", "Equilibrium throughput θ_i", "θ_i"),
            (fig11, "fig11", "utilities", "Equilibrium utility U_i", "U_i"),
        ],
    )
    def test_per_cp_figures_bitwise_identical(
        self, legacy_grid, tmp_path, module, figure_id, quantity, label, y_label
    ):
        market, grid = legacy_grid
        extractors = {
            "subsidies": lambda eq: eq.subsidies,
            "populations": lambda eq: eq.state.populations,
            "throughputs": lambda eq: eq.state.throughputs,
            "utilities": lambda eq: eq.state.utilities,
        }
        values = grid.provider_quantity(extractors[quantity])
        legacy = legacy_per_cp_panels(
            market, grid, values,
            figure_id=figure_id, quantity=label, y_label=y_label,
        )
        result = module.compute(PRICES, CAPS)
        assert_csv_identical(result.figures, legacy, tmp_path)
