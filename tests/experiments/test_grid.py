"""Unit tests for the shared §5 equilibrium grid cache."""

import numpy as np
import pytest

from repro.engine import SolveCache, SolveService, SolveStore
from repro.engine.service import default_service
from repro.experiments.grid import (
    clear_cache,
    engine,
    reset_engine,
    section5_grid,
)


class TestGridCache:
    def test_same_axes_hit_the_cache(self):
        clear_cache()
        prices = np.linspace(0.2, 1.0, 3)
        caps = (0.0, 0.5)
        first = section5_grid(prices, caps)
        second = section5_grid(prices, caps)
        assert first is second

    def test_different_axes_miss(self):
        clear_cache()
        a = section5_grid(np.linspace(0.2, 1.0, 3), (0.0, 0.5))
        b = section5_grid(np.linspace(0.2, 1.0, 4), (0.0, 0.5))
        assert a is not b

    def test_clear_cache_forces_recompute(self):
        clear_cache()
        prices = np.linspace(0.2, 1.0, 3)
        first = section5_grid(prices, (0.0,))
        clear_cache()
        second = section5_grid(prices, (0.0,))
        assert first is not second
        # Determinism: the recomputed grid carries identical numbers.
        np.testing.assert_allclose(
            first.quantity(lambda eq: eq.state.revenue),
            second.quantity(lambda eq: eq.state.revenue),
            rtol=1e-12,
        )


@pytest.fixture
def restore_shared_engine():
    yield
    reset_engine(service=None)


class TestEngineAccessor:
    def test_engine_is_a_lazy_singleton(self):
        assert engine() is engine()
        assert engine().service is default_service()

    def test_reset_engine_isolates_cache_state(self, restore_shared_engine):
        prices = np.linspace(0.2, 1.0, 3)
        section5_grid(prices, (0.0,))
        old = engine()
        assert len(old.cache) == 1
        # Bare reset defers the rebuild: nothing is constructed until the
        # next engine() call, so the environment at reset time is not
        # captured.
        assert reset_engine() is None
        fresh = engine()
        assert fresh is not old
        assert len(fresh.cache) == 0
        # The backing default service was rebuilt too.
        assert fresh.service is not old.service
        assert fresh.service is default_service()

    def test_reset_engine_binds_a_custom_service(
        self, tmp_path, restore_shared_engine
    ):
        service = SolveService(cache=SolveCache(), store=SolveStore(tmp_path))
        fresh = reset_engine(service=service)
        assert fresh.service is service
        assert default_service() is service
        section5_grid(np.linspace(0.2, 1.0, 3), (0.0,))
        assert service.counters.computed == 1
        assert len(service.store) == 1  # rows persisted to the given store
