"""Unit tests for the shared §5 equilibrium grid cache."""

import numpy as np

from repro.experiments.grid import clear_cache, section5_grid


class TestGridCache:
    def test_same_axes_hit_the_cache(self):
        clear_cache()
        prices = np.linspace(0.2, 1.0, 3)
        caps = (0.0, 0.5)
        first = section5_grid(prices, caps)
        second = section5_grid(prices, caps)
        assert first is second

    def test_different_axes_miss(self):
        clear_cache()
        a = section5_grid(np.linspace(0.2, 1.0, 3), (0.0, 0.5))
        b = section5_grid(np.linspace(0.2, 1.0, 4), (0.0, 0.5))
        assert a is not b

    def test_clear_cache_forces_recompute(self):
        clear_cache()
        prices = np.linspace(0.2, 1.0, 3)
        first = section5_grid(prices, (0.0,))
        clear_cache()
        second = section5_grid(prices, (0.0,))
        assert first is not second
        # Determinism: the recomputed grid carries identical numbers.
        np.testing.assert_allclose(
            first.quantity(lambda eq: eq.state.revenue),
            second.quantity(lambda eq: eq.state.revenue),
            rtol=1e-12,
        )
