"""Unit tests for the experiments CLI."""

import numpy as np
import pytest

from repro.experiments import fig04
from repro.experiments.runner import EXPERIMENTS, main, run_experiments


class TestRegistry:
    def test_all_figures_registered(self):
        assert set(EXPERIMENTS) == {
            "fig4",
            "fig5",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
        }


class TestRunExperiments:
    def test_runs_and_writes(self, tmp_path, capsys):
        results = run_experiments(["fig4"], out_dir=tmp_path, quiet=True)
        assert len(results) == 1
        assert (tmp_path / "fig4-left.csv").exists()
        assert (tmp_path / "fig4-right.csv").exists()

    def test_unknown_experiment_raises(self, tmp_path):
        with pytest.raises(KeyError):
            run_experiments(["fig99"], out_dir=tmp_path)

    def test_verbose_mode_renders_charts(self, tmp_path, capsys):
        run_experiments(["fig4"], out_dir=tmp_path, quiet=False)
        out = capsys.readouterr().out
        assert "fig4" in out
        assert "PASS" in out


class TestMain:
    def test_exit_zero_on_success(self, tmp_path, capsys):
        code = main(["fig4", "--out", str(tmp_path), "--quiet"])
        assert code == 0
        assert "0 failure(s)" in capsys.readouterr().out

    def test_exit_two_on_unknown_name(self, tmp_path, capsys):
        code = main(["nope", "--out", str(tmp_path)])
        assert code == 2

    def test_exit_one_on_failed_check(self, tmp_path, monkeypatch, capsys):
        from repro.experiments.base import ExperimentResult, ShapeCheck

        def fake_compute():
            real = fig04.compute(np.linspace(0.0, 2.0, 5))
            return ExperimentResult(
                experiment_id=real.experiment_id,
                title=real.title,
                figures=real.figures,
                checks=(ShapeCheck(name="forced failure", passed=False),),
            )

        monkeypatch.setitem(EXPERIMENTS, "fig4", fake_compute)
        code = main(["fig4", "--out", str(tmp_path), "--quiet"])
        assert code == 1
        assert "forced failure" in capsys.readouterr().err
