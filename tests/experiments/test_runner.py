"""Unit tests for the experiments CLI."""

import numpy as np
import pytest

from repro.experiments import fig04
from repro.experiments.runner import (
    EXPERIMENTS,
    canonical_experiment,
    main,
    run_experiments,
)


class TestRegistry:
    def test_all_figures_registered(self):
        assert set(EXPERIMENTS) == {
            "fig4",
            "fig5",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
        }


class TestCanonicalNames:
    def test_zero_padded_spellings_accepted(self):
        assert canonical_experiment("fig04") == "fig4"
        assert canonical_experiment("fig4") == "fig4"
        assert canonical_experiment("fig10") == "fig10"
        assert canonical_experiment("FIG07") == "fig7"

    def test_unknown_names_pass_through(self):
        assert canonical_experiment("nope") == "nope"
        assert canonical_experiment("fig0") == "fig0"

    def test_run_experiments_accepts_padded_name(self, tmp_path):
        results = run_experiments(["fig04"], out_dir=tmp_path, quiet=True)
        assert results[0].experiment_id == "fig4"
        assert (tmp_path / "fig4-left.csv").exists()


class TestRunExperiments:
    def test_runs_and_writes(self, tmp_path, capsys):
        results = run_experiments(["fig4"], out_dir=tmp_path, quiet=True)
        assert len(results) == 1
        assert (tmp_path / "fig4-left.csv").exists()
        assert (tmp_path / "fig4-right.csv").exists()

    def test_unknown_experiment_raises(self, tmp_path):
        with pytest.raises(KeyError):
            run_experiments(["fig99"], out_dir=tmp_path)

    def test_verbose_mode_renders_charts(self, tmp_path, capsys):
        run_experiments(["fig4"], out_dir=tmp_path, quiet=False)
        out = capsys.readouterr().out
        assert "fig4" in out
        assert "PASS" in out


class TestMain:
    def test_exit_zero_on_success(self, tmp_path, capsys):
        code = main(["fig4", "--out", str(tmp_path), "--quiet"])
        assert code == 0
        assert "0 failure(s)" in capsys.readouterr().out

    def test_exit_two_on_unknown_name(self, tmp_path, capsys):
        code = main(["nope", "--out", str(tmp_path)])
        assert code == 2

    def test_exit_one_on_failed_check(self, tmp_path, monkeypatch, capsys):
        from repro.experiments.base import ExperimentResult, ShapeCheck

        def fake_compute():
            real = fig04.compute(np.linspace(0.0, 2.0, 5))
            return ExperimentResult(
                experiment_id=real.experiment_id,
                title=real.title,
                figures=real.figures,
                checks=(ShapeCheck(name="forced failure", passed=False),),
            )

        monkeypatch.setitem(EXPERIMENTS, "fig4", fake_compute)
        code = main(["fig4", "--out", str(tmp_path), "--quiet"])
        assert code == 1
        # On failure the summary and the FAIL detail share stderr.
        err = capsys.readouterr().err
        assert "forced failure" in err
        assert "1 failure(s)" in err

    def test_summary_and_failures_share_a_stream(self, tmp_path, capsys):
        code = main(["fig04", "--out", str(tmp_path), "--quiet"])
        assert code == 0
        captured = capsys.readouterr()
        assert "0 failure(s)" in captured.out
        assert "FAIL" not in captured.err

    def test_workers_flag_round_trips(self, tmp_path):
        from repro.engine import get_default_workers

        code = main(["fig4", "--out", str(tmp_path), "--quiet", "--workers", "2"])
        assert code == 0
        # The CLI restores the process-wide default on exit.
        assert get_default_workers() == 1

    def test_workers_flag_validated(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["fig4", "--out", str(tmp_path), "--workers", "0"])
