"""Unit tests for the experiments CLI."""

import json

import numpy as np
import pytest

from repro.experiments import fig04
from repro.experiments.runner import (
    EXPERIMENT_SPECS,
    EXPERIMENTS,
    canonical_experiment,
    main,
    resolve_experiments,
    run_experiments,
)


class TestRegistry:
    def test_all_figures_registered(self):
        assert set(EXPERIMENTS) == {
            "fig4",
            "fig5",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
        }

    def test_specs_mirror_experiments(self):
        assert set(EXPERIMENT_SPECS) == set(EXPERIMENTS)
        for key, spec in EXPERIMENT_SPECS.items():
            assert spec.experiment_id == key


class TestResolveExperiments:
    def test_upfront_validation_rejects_before_running(self, tmp_path):
        # An unknown name *after* valid ones must abort before anything
        # runs — no partial CSVs on disk.
        with pytest.raises(KeyError):
            run_experiments(["fig4", "not-a-thing"], out_dir=tmp_path)
        assert list(tmp_path.iterdir()) == []

    def test_duplicates_collapse_in_order(self):
        resolved = resolve_experiments(["fig4", "fig04", "FIG4", "fig7", "fig4"])
        assert [key for key, _ in resolved] == ["fig4", "fig7"]

    def test_scenario_ids_resolve(self):
        resolved = resolve_experiments(["section5"])
        assert resolved[0][0] == "section5"

    def test_run_deduplicates_spellings(self, tmp_path):
        results = run_experiments(["fig4", "fig04"], out_dir=tmp_path, quiet=True)
        assert len(results) == 1
        assert results[0].experiment_id == "fig4"

    def test_all_expansion_keeps_scenario_ids(self):
        from repro.experiments.runner import _expand_all

        assert _expand_all(["all"]) == list(EXPERIMENTS)
        # Scenario ids riding alongside 'all' must survive the expansion.
        assert _expand_all(["all", "random-12"]) == [
            *EXPERIMENTS, "random-12",
        ]
        assert _expand_all(["fig4", "all"]) == ["fig4", *EXPERIMENTS]

    def test_inline_spec_with_colliding_id_still_runs(self):
        # An edited --scenario file may reuse a registered id while naming a
        # different market; it must not be dropped as a duplicate.
        from repro.experiments.pipeline import scenario_experiment
        from repro.scenarios import scaled_market

        spec = scenario_experiment(
            scaled_market(
                4, prices=(0.0, 1.0), policy_levels=(0.0,),
                scenario_id="section5",
            )
        )
        resolved = resolve_experiments(["section5", spec])
        assert [key for key, _ in resolved] == ["section5", "section5"]


class TestCanonicalNames:
    def test_zero_padded_spellings_accepted(self):
        assert canonical_experiment("fig04") == "fig4"
        assert canonical_experiment("fig4") == "fig4"
        assert canonical_experiment("fig10") == "fig10"
        assert canonical_experiment("FIG07") == "fig7"

    def test_unknown_names_pass_through(self):
        assert canonical_experiment("nope") == "nope"
        assert canonical_experiment("fig0") == "fig0"

    def test_run_experiments_accepts_padded_name(self, tmp_path):
        results = run_experiments(["fig04"], out_dir=tmp_path, quiet=True)
        assert results[0].experiment_id == "fig4"
        assert (tmp_path / "fig4-left.csv").exists()


class TestRunExperiments:
    def test_runs_and_writes(self, tmp_path, capsys):
        results = run_experiments(["fig4"], out_dir=tmp_path, quiet=True)
        assert len(results) == 1
        assert (tmp_path / "fig4-left.csv").exists()
        assert (tmp_path / "fig4-right.csv").exists()

    def test_unknown_experiment_raises(self, tmp_path):
        with pytest.raises(KeyError):
            run_experiments(["fig99"], out_dir=tmp_path)

    def test_verbose_mode_renders_charts(self, tmp_path, capsys):
        run_experiments(["fig4"], out_dir=tmp_path, quiet=False)
        out = capsys.readouterr().out
        assert "fig4" in out
        assert "PASS" in out


class TestMain:
    def test_exit_zero_on_success(self, tmp_path, capsys):
        code = main(["fig4", "--out", str(tmp_path), "--quiet"])
        assert code == 0
        assert "0 failure(s)" in capsys.readouterr().out

    def test_exit_two_on_unknown_name(self, tmp_path, capsys):
        code = main(["nope", "--out", str(tmp_path)])
        assert code == 2

    def test_exit_one_on_failed_check(self, tmp_path, monkeypatch, capsys):
        from repro.experiments.base import ExperimentResult, ShapeCheck

        def fake_compute():
            real = fig04.compute(np.linspace(0.0, 2.0, 5))
            return ExperimentResult(
                experiment_id=real.experiment_id,
                title=real.title,
                figures=real.figures,
                checks=(ShapeCheck(name="forced failure", passed=False),),
            )

        monkeypatch.setitem(EXPERIMENTS, "fig4", fake_compute)
        code = main(["fig4", "--out", str(tmp_path), "--quiet"])
        assert code == 1
        # On failure the summary and the FAIL detail share stderr.
        err = capsys.readouterr().err
        assert "forced failure" in err
        assert "1 failure(s)" in err

    def test_summary_and_failures_share_a_stream(self, tmp_path, capsys):
        code = main(["fig04", "--out", str(tmp_path), "--quiet"])
        assert code == 0
        captured = capsys.readouterr()
        assert "0 failure(s)" in captured.out
        assert "FAIL" not in captured.err

    def test_workers_flag_round_trips(self, tmp_path):
        from repro.engine import get_default_workers

        code = main(["fig4", "--out", str(tmp_path), "--quiet", "--workers", "2"])
        assert code == 0
        # The CLI restores the process-wide default on exit.
        assert get_default_workers() == 1

    def test_workers_flag_validated(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["fig4", "--out", str(tmp_path), "--workers", "0"])

    def test_no_experiments_errors(self):
        with pytest.raises(SystemExit):
            main([])
        with pytest.raises(SystemExit):
            main(["run"])


class TestVerbs:
    def test_list_shows_experiments_and_scenarios(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out
        assert "section5" in out
        assert "scaled-256" in out

    def test_describe_experiment(self, capsys):
        assert main(["describe", "fig07"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out
        assert "sweep:" in out
        assert "section5" in out

    def test_describe_scenario(self, capsys):
        assert main(["describe", "random-12"]) == 0
        out = capsys.readouterr().out
        assert "random-12" in out
        assert "seed" in out

    def test_describe_unknown_exits_two(self, capsys):
        assert main(["describe", "nope"]) == 2
        assert "nope" in capsys.readouterr().err

    def test_run_verb_equals_legacy_invocation(self, tmp_path, capsys):
        assert main(["run", "fig4", "--out", str(tmp_path), "--quiet"]) == 0
        assert (tmp_path / "fig4-left.csv").exists()


class TestScenarioRuns:
    def test_run_scenario_file(self, tmp_path, capsys):
        from repro.io import save_scenario
        from repro.scenarios import scaled_market

        spec = scaled_market(
            4, prices=(0.0, 1.0, 2.0), policy_levels=(0.0, 1.0),
            scenario_id="cli-file-test",
        )
        path = tmp_path / "scenario.json"
        save_scenario(spec, path)
        code = main(
            ["run", "--scenario", str(path), "--out", str(tmp_path), "--quiet"]
        )
        assert code == 0
        assert (tmp_path / "cli-file-test-revenue.csv").exists()

    def test_missing_scenario_file_exits_two(self, tmp_path, capsys):
        code = main(["run", "--scenario", str(tmp_path / "nope.json")])
        assert code == 2
        assert "cannot load scenario" in capsys.readouterr().err


class TestGeneratedScenariosEndToEnd:
    """Acceptance: generated scenarios run through the CLI and round-trip."""

    def test_scaled_256_cli_run_and_round_trip(self, tmp_path):
        from repro.io import load_scenario, save_scenario, scenario_to_dict
        from repro.scenarios import get_scenario

        code = main(["run", "scaled-256", "--out", str(tmp_path), "--quiet"])
        assert code == 0
        assert (tmp_path / "scaled-256-revenue.csv").exists()
        spec = get_scenario("scaled-256")
        assert spec.size == 256
        path = tmp_path / "scaled-256.json"
        save_scenario(spec, path)
        assert scenario_to_dict(load_scenario(path)) == scenario_to_dict(spec)

    def test_seeded_random_cli_run_from_json_with_workers(self, tmp_path):
        from repro.io import load_scenario, save_scenario
        from repro.scenarios import random_market

        spec = random_market(
            123, 6,
            prices=(0.0, 0.5, 1.0, 1.5, 2.0),
            policy_levels=(0.0, 1.0),
            scenario_id="random-6-s123",
        )
        path = tmp_path / "random.json"
        save_scenario(spec, path)
        assert load_scenario(path).metadata["seed"] == 123
        code = main(
            [
                "run",
                "--scenario", str(path),
                "--out", str(tmp_path),
                "--quiet",
                "--workers", "2",
            ]
        )
        assert code == 0
        assert (tmp_path / "random-6-s123-revenue.csv").exists()


class TestCacheVerb:
    def test_path_stats_clear_round_trip(self, tmp_path, capsys):
        from repro.engine import SolveStore

        store_dir = tmp_path / "store"
        SolveStore(store_dir).put(("seed",), {"v": 1}, codec="json")

        assert main(["cache", "path", "--cache-dir", str(store_dir)]) == 0
        assert capsys.readouterr().out.strip() == str(store_dir)

        assert main(["cache", "stats", "--cache-dir", str(store_dir)]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 1
        assert stats["bytes"] > 0

        assert main(["cache", "clear", "--cache-dir", str(store_dir)]) == 0
        assert "removed 1 entry" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", str(store_dir)]) == 0
        assert json.loads(capsys.readouterr().out)["entries"] == 0

    def test_cache_dir_defaults_to_environment(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["cache", "path"]) == 0
        assert capsys.readouterr().out.strip() == str(tmp_path)

    def test_unconfigured_cache_exits_two(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert main(["cache", "stats"]) == 2
        assert "no cache directory configured" in capsys.readouterr().err


class TestCacheFlags:
    def test_warm_store_rerun_reports_zero_solves(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        args = ["fig4", "--out", str(tmp_path), "--json", "--cache-dir", store]
        assert main(args) == 0
        cold = json.loads(capsys.readouterr().out)["cache"]
        assert cold["computed"] > 0
        assert cold["store"]["writes"] == cold["computed"]

        assert main(args) == 0
        warm = json.loads(capsys.readouterr().out)["cache"]
        assert warm["computed"] == 0
        assert warm["store_hits"] > 0
        assert warm["store"]["entries"] == cold["store"]["entries"]

    def test_no_cache_ignores_environment_dir(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "ignored"))
        code = main(["fig4", "--out", str(tmp_path), "--json", "--no-cache"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cache"]["store"] is None
        assert not (tmp_path / "ignored").exists()

    def test_cache_flags_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                ["fig4", "--out", str(tmp_path), "--no-cache",
                 "--cache-dir", str(tmp_path)]
            )

    def test_human_summary_mentions_solve_service(self, tmp_path, capsys):
        assert main(["fig4", "--out", str(tmp_path), "--quiet"]) == 0
        assert "solve service:" in capsys.readouterr().out


class TestJsonSummary:
    def test_json_summary_structure(self, tmp_path, capsys):
        code = main(["fig4", "--out", str(tmp_path), "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["failures"] == []
        assert set(payload["cache"]) == {
            "memory_hits", "store_hits", "computed", "store", "executor",
        }
        executor = payload["cache"]["executor"]
        assert executor["name"] in ("serial", "pool", "chunked")
        assert executor["tasks"] >= executor["pooled_tasks"]
        (experiment,) = payload["experiments"]
        assert experiment["id"] == "fig4"
        assert experiment["all_passed"] is True
        assert {c["name"] for c in experiment["checks"]} == {
            c.name for c in EXPERIMENT_SPECS["fig4"].checks
        }
        assert all(path.endswith(".csv") for path in experiment["csv"])

    def test_json_reports_failures_with_exit_one(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.experiments.base import ExperimentResult, ShapeCheck

        def fake_compute():
            real = fig04.compute(np.linspace(0.0, 2.0, 5))
            return ExperimentResult(
                experiment_id=real.experiment_id,
                title=real.title,
                figures=real.figures,
                checks=(ShapeCheck(name="forced failure", passed=False),),
            )

        monkeypatch.setitem(EXPERIMENTS, "fig4", fake_compute)
        code = main(["fig4", "--out", str(tmp_path), "--json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["failures"] == [
            {"experiment": "fig4", "check": "forced failure"}
        ]
