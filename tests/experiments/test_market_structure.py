"""The market_structure sweep kind of the experiment pipeline."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.experiments.pipeline import (
    MARKET_STRUCTURE_QUANTITIES,
    ExperimentSpec,
    MarketStructureView,
    PanelSpec,
    check,
    market_structure_experiment,
    run_spec,
)
from repro.providers import AccessISP, Market, exponential_cp
from repro.scenarios import ScenarioSpec, oligopoly


def tiny_oligopoly_scenario(**meta_overrides):
    """A 1-CP competition scenario with coarse solve settings (fast)."""
    base = ScenarioSpec(
        scenario_id="ms-base",
        title="one CP type",
        market=Market(
            [exponential_cp(2.0, 2.0, value=1.0)],
            AccessISP(price=1.0, capacity=1.0),
        ),
        prices=(0.5, 1.0),
        policy_levels=(0.0,),
    )
    scn = oligopoly(base, 2, cap=0.3, scenario_id="ms-olig")
    metadata = dict(scn.metadata)
    metadata.update(
        {
            "grid_points": 6,
            "xtol": 1e-3,
            "tol": 1e-2,
            "price_range": [0.05, 2.0],
        }
    )
    metadata.update(meta_overrides)
    return ScenarioSpec(
        scenario_id=scn.scenario_id,
        title=scn.title,
        market=scn.market,
        prices=scn.prices,
        policy_levels=scn.policy_levels,
        metadata=metadata,
    )


class TestSpecValidation:
    def _panel(self, quantity="industry_revenue"):
        return PanelSpec("p", "t", quantity, "y")

    def test_market_structure_requires_counts(self):
        with pytest.raises(ModelError):
            ExperimentSpec(
                experiment_id="x", title="t", scenario="section5",
                sweep="market_structure", panels=(self._panel(),),
            )

    def test_counts_must_be_positive_and_increasing(self):
        for counts in ((0, 1), (2, 2), (3, 1)):
            with pytest.raises(ModelError):
                ExperimentSpec(
                    experiment_id="x", title="t", scenario="section5",
                    sweep="market_structure", panels=(self._panel(),),
                    carrier_counts=counts,
                )

    def test_counts_forbidden_on_grid_sweeps(self):
        with pytest.raises(ModelError):
            ExperimentSpec(
                experiment_id="x", title="t", scenario="section5",
                sweep="grid", panels=(PanelSpec("p", "t", "revenue", "y"),),
                carrier_counts=(1, 2),
            )

    def test_panels_must_use_market_structure_quantities(self):
        with pytest.raises(ModelError):
            ExperimentSpec(
                experiment_id="x", title="t", scenario="section5",
                sweep="market_structure",
                panels=(PanelSpec("p", "t", "revenue", "y"),),
                carrier_counts=(1, 2),
            )

    def test_panelspec_accepts_market_structure_quantities(self):
        for quantity in MARKET_STRUCTURE_QUANTITIES:
            panel = PanelSpec("p", "t", quantity, "y")
            assert not panel.per_provider

    def test_grid_sweeps_reject_market_structure_quantities(self):
        # Construction-time, not after the sweep is solved.
        for sweep in ("price", "grid"):
            with pytest.raises(ModelError):
                ExperimentSpec(
                    experiment_id="x", title="t", scenario="section5",
                    sweep=sweep, panels=(self._panel(),),
                )

    def test_malformed_competition_metadata_fails_before_solving(self):
        scn = tiny_oligopoly_scenario(price_range=[1.0])
        with pytest.raises(ModelError):
            run_spec(market_structure_experiment(scn, carrier_counts=(1,)))


class TestRunSpec:
    @pytest.fixture(scope="class")
    def result(self):
        spec = market_structure_experiment(
            tiny_oligopoly_scenario(), carrier_counts=(1, 2)
        )
        return spec, run_spec(spec)

    def test_panels_are_vectors_over_counts(self, result):
        spec, res = result
        assert len(res.figures) == len(spec.panels)
        for figure in res.figures:
            np.testing.assert_array_equal(figure.x, [1.0, 2.0])
            assert figure.x_label == "N"
            assert len(figure.series) == 1
            assert figure.series[0].y.shape == (2,)

    def test_structural_checks_pass(self, result):
        _, res = result
        assert res.all_passed(), [c.name for c in res.checks if not c.passed]

    def test_entry_erodes_prices_and_raises_welfare(self, result):
        _, res = result
        by_id = {f.figure_id: f for f in res.figures}
        prices = by_id["ms-olig-mean_price"].series[0].y
        welfare = by_id["ms-olig-industry_welfare"].series[0].y
        assert prices[1] < prices[0]
        assert welfare[1] > welfare[0]

    def test_experiment_id_and_titles(self, result):
        spec, res = result
        assert spec.experiment_id == "ms-olig-structure"
        assert res.experiment_id == "ms-olig-structure"


class TestMarketStructureView:
    def test_unknown_quantity_rejected(self):
        view = MarketStructureView(tiny_oligopoly_scenario(), (), ())
        with pytest.raises(ModelError):
            view.scalar("revenue")

    def test_checks_see_raw_results(self):
        spec = ExperimentSpec(
            experiment_id="x", title="t",
            scenario=tiny_oligopoly_scenario(),
            sweep="market_structure",
            panels=(PanelSpec("x-rev", "t", "industry_revenue", "y"),),
            checks=(
                check(
                    "every competition converged under budget",
                    lambda v: all(
                        r.iterations < 60 for r in v.results
                    ),
                ),
            ),
            carrier_counts=(1,),
        )
        res = run_spec(spec)
        assert res.all_passed()
