"""The ``dynamics`` CLI verb: flags, JSON counters, resumability."""

import json

import pytest

from repro.experiments.runner import main
from repro.io import save_scenario
from repro.scenarios import scaled_market, trajectory_variant


@pytest.fixture
def scenario_file(tmp_path):
    base = scaled_market(
        4,
        prices=(0.5, 1.0),
        policy_levels=(0.0, 1.0),
        scenario_id="cli-dyn-base",
    )
    scn = trajectory_variant(
        base,
        kind="capacity",
        horizon=4,
        segment_length=2,
        cap=0.5,
        scenario_id="cli-dyn",
    )
    path = tmp_path / "scenario.json"
    save_scenario(scn, path)
    return path


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestDynamicsVerb:
    def test_json_summary(self, capsys, tmp_path, scenario_file):
        code, out, _ = run_cli(
            capsys,
            "dynamics",
            "--scenario-file", str(scenario_file),
            "--json",
            "--out", str(tmp_path / "results"),
            "--no-cache",
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["scenario"] == "cli-dyn"
        assert payload["kind"] == "capacity"
        assert payload["horizon"] == 4
        assert payload["segments"] == 2
        assert payload["records"] == 5
        assert payload["cache"]["computed"] == 2
        assert set(payload["final"]) == {
            "step", "adoption", "utilization", "revenue", "welfare",
            "capacity", "price",
        }
        assert (tmp_path / "results" / "cli-dyn-trajectory.csv").is_file()

    def test_flags_override_metadata(self, capsys, tmp_path, scenario_file):
        code, out, _ = run_cli(
            capsys,
            "dynamics",
            "--scenario-file", str(scenario_file),
            "--horizon", "2",
            "--segment-length", "1",
            "--json",
            "--out", str(tmp_path / "results"),
            "--no-cache",
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["horizon"] == 2
        assert payload["segments"] == 2

    def test_run_dynamics_alias_and_registered_scenario(
        self, capsys, tmp_path
    ):
        code, out, _ = run_cli(
            capsys,
            "run", "dynamics", "dynamics-20",
            "--horizon", "2",
            "--segment-length", "2",
            "--json",
            "--out", str(tmp_path / "results"),
            "--no-cache",
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["scenario"] == "dynamics-20"
        assert payload["cache"]["computed"] == 1

    def test_warm_cache_dir_rerun_is_solve_free(
        self, capsys, tmp_path, scenario_file
    ):
        argv = (
            "dynamics",
            "--scenario-file", str(scenario_file),
            "--json",
            "--out", str(tmp_path / "results"),
            "--cache-dir", str(tmp_path / "store"),
        )
        code, out, _ = run_cli(capsys, *argv)
        assert code == 0
        cold = json.loads(out)
        assert cold["cache"]["computed"] == 2

        code, out, _ = run_cli(capsys, *argv)
        assert code == 0
        warm = json.loads(out)
        assert warm["cache"]["computed"] == 0
        assert warm["cache"]["store_hits"] == 2
        assert warm["final"] == cold["final"]

    def test_human_output_mentions_segments_and_cache(
        self, capsys, tmp_path, scenario_file
    ):
        code, out, _ = run_cli(
            capsys,
            "dynamics",
            "--scenario-file", str(scenario_file),
            "--out", str(tmp_path / "results"),
            "--no-cache",
        )
        assert code == 0
        assert "capacity trajectory" in out
        assert "2 segment(s)" in out
        assert "solve service:" in out

    def test_unknown_scenario_exits_2(self, capsys):
        code, _, err = run_cli(capsys, "dynamics", "not-a-scenario")
        assert code == 2
        assert "unknown scenario" in err

    def test_missing_file_exits_2(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys, "dynamics", "--scenario-file", str(tmp_path / "nope.json")
        )
        assert code == 2
        assert "cannot load scenario" in err

    def test_bad_flag_value_exits_2(self, capsys, tmp_path, scenario_file):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "dynamics",
                    "--scenario-file", str(scenario_file),
                    "--horizon", "0",
                ]
            )
        assert excinfo.value.code == 2
        assert "horizon" in capsys.readouterr().err
