"""Unit tests for repro.experiments.scenarios."""

import numpy as np
import pytest

from repro.experiments.scenarios import (
    FIGURE_PRICE_GRID,
    POLICY_LEVELS,
    SECTION5_PARAMETERS,
    section3_market,
    section5_market,
)


class TestSection3Market:
    def test_has_nine_types(self):
        market = section3_market()
        assert market.size == 9

    def test_covers_the_alpha_beta_grid(self):
        market = section3_market()
        pairs = {
            (cp.demand.alpha, cp.throughput.beta) for cp in market.providers
        }
        assert pairs == {(a, b) for a in (1.0, 3.0, 5.0) for b in (1.0, 3.0, 5.0)}

    def test_paper_capacity_and_price(self):
        market = section3_market(price=0.7)
        assert market.isp.capacity == 1.0
        assert market.isp.price == 0.7

    def test_values_are_zero(self):
        # §3 has no subsidization; profitabilities are unused placeholders.
        assert np.all(section3_market().values == 0.0)


class TestSection5Market:
    def test_has_eight_types(self):
        market = section5_market()
        assert market.size == 8

    def test_covers_the_parameter_cube(self):
        market = section5_market()
        triples = {
            (cp.demand.alpha, cp.throughput.beta, cp.value)
            for cp in market.providers
        }
        assert triples == set(SECTION5_PARAMETERS)

    def test_order_matches_parameter_constant(self):
        market = section5_market()
        for cp, (alpha, beta, value) in zip(market.providers, SECTION5_PARAMETERS):
            assert cp.demand.alpha == alpha
            assert cp.throughput.beta == beta
            assert cp.value == value


class TestAxes:
    def test_price_grid_spans_zero_to_two(self):
        assert FIGURE_PRICE_GRID[0] == 0.0
        assert FIGURE_PRICE_GRID[-1] == 2.0
        assert np.all(np.diff(FIGURE_PRICE_GRID) > 0.0)

    def test_policy_levels_match_paper(self):
        assert POLICY_LEVELS == (0.0, 0.5, 1.0, 1.5, 2.0)
