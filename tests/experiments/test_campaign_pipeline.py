"""The ``campaign`` sweep kind in the experiment pipeline."""

import numpy as np
import pytest

from repro.campaigns import SWEEP_METRICS, CampaignSpec
from repro.engine import SolveCache, SolveService, SolveStore
from repro.exceptions import ModelError
from repro.experiments.grid import reset_engine
from repro.experiments.pipeline import (
    CAMPAIGN_QUANTITIES,
    ExperimentSpec,
    PanelSpec,
    campaign_experiment,
    run_spec,
)


@pytest.fixture
def store_engine(tmp_path):
    """Point the shared engine at a persistent store for the test."""
    service = SolveService(
        cache=SolveCache(), store=SolveStore(tmp_path / "store")
    )
    reset_engine(service=service)
    yield service
    reset_engine(service=None)


def campaign() -> CampaignSpec:
    return CampaignSpec(
        campaign_id="pipe",
        seed_count=2,
        axes={"n_types": (4, 6)},
        base_params={"prices": [0.8, 1.2]},
    )


class TestCampaignExperiment:
    def test_runs_end_to_end_with_passing_checks(self, store_engine):
        spec = campaign_experiment(campaign())
        assert spec.sweep == "campaign"
        assert spec.experiment_id == "pipe-campaign"
        result = run_spec(spec)
        assert all(check.passed for check in result.checks), [
            (c.name, c.detail) for c in result.checks
        ]
        assert len(result.figures) == len(SWEEP_METRICS["price"])

    def test_panels_sweep_the_row_index(self, store_engine):
        result = run_spec(campaign_experiment(campaign()))
        figure = result.figures[0]
        np.testing.assert_array_equal(figure.x, [0, 1, 2, 3])
        assert figure.x_label == "row"
        assert np.all(np.isfinite(figure.series[0].y))

    def test_csv_export(self, store_engine, tmp_path):
        result = run_spec(campaign_experiment(campaign()))
        paths = result.write_csv(tmp_path / "out")
        assert len(paths) == len(result.figures)
        for path in paths:
            assert path.read_text().startswith("row,")


class TestValidation:
    def test_campaign_quantities_mirror_the_metric_table(self):
        for sweep, names in SWEEP_METRICS.items():
            for name in names:
                assert name in CAMPAIGN_QUANTITIES, (sweep, name)

    def test_campaign_sweep_requires_a_campaign(self):
        with pytest.raises(ModelError, match="campaign"):
            ExperimentSpec(
                experiment_id="x",
                title="x",
                scenario=None,
                sweep="campaign",
                panels=(PanelSpec("x-a", "t", "welfare", "W"),),
            )

    def test_campaign_forbidden_on_grid_sweeps(self):
        with pytest.raises(ModelError, match="campaign"):
            ExperimentSpec(
                experiment_id="x",
                title="x",
                scenario="section3",
                sweep="price",
                panels=(PanelSpec("x-a", "t", "welfare", "W"),),
                campaign=campaign(),
            )

    def test_panel_quantity_must_match_the_sweep_kind(self):
        with pytest.raises(ModelError, match="hhi"):
            ExperimentSpec(
                experiment_id="x",
                title="x",
                scenario=None,
                sweep="campaign",
                panels=(PanelSpec("x-a", "t", "hhi", "HHI"),),
                campaign=campaign(),
            )

    def test_unknown_quantity_still_rejected_globally(self):
        with pytest.raises(ModelError, match="vibes"):
            PanelSpec("x-a", "t", "vibes", "V")
