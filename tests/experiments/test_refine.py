"""Adaptive grid refinement: bitwise parity, solve savings, resumability.

The acceptance contract of :mod:`repro.experiments.refine`:

* every refined node is bitwise-equal to the uniform pointwise grid's
  value at the same ``(price, cap)`` coordinate (same task keys);
* on the §5 grid, refinement reaches the interior resolution of a
  uniform axis ``2**levels`` times finer with at least 2x fewer node
  solves;
* refined results are content-keyed through the same store as any other
  sweep, so a warm replay reports ``computed == 0``;
* the ``refine`` option on :class:`ExperimentSpec` (and the ``--refine``
  CLI flags) routes price/grid sweeps through it and rejects sweep kinds
  that cannot refine.
"""

import dataclasses

import numpy as np
import pytest

from repro.engine import SolveCache, SolveService, SolveStore
from repro.exceptions import ModelError
from repro.experiments import (
    POLICY_LEVELS,
    RefineSpec,
    refine_grid,
    scenario_experiment,
    section5_market,
    uniform_pointwise_grid,
)
from repro.experiments.pipeline import ExperimentSpec, run_spec
from repro.experiments.refine import REFINE_DEFAULTS
from repro.providers import AccessISP, Market, exponential_cp
from repro.scenarios import get_scenario


def fresh_service(store_dir=None, executor="serial") -> SolveService:
    store = SolveStore(store_dir) if store_dir is not None else None
    return SolveService(cache=SolveCache(), store=store, executor=executor)


def tiny_market() -> Market:
    return Market(
        [
            exponential_cp(2.0, 2.0, value=1.0),
            exponential_cp(5.0, 3.0, value=0.6),
        ],
        AccessISP(price=1.0, capacity=1.0),
    )


class TestRefineSpec:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"levels": 0},
            {"threshold": 0.0},
            {"threshold": -1.0},
            {"quantities": ("nope",)},
            {"quantities": (), "breakpoints": False},
            {"boundary_tol": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ModelError):
            RefineSpec(**kwargs)

    def test_defaults_come_from_one_place(self):
        spec = RefineSpec()
        assert spec.levels == REFINE_DEFAULTS["levels"]
        assert spec.threshold == REFINE_DEFAULTS["threshold"]
        assert spec.quantities == REFINE_DEFAULTS["quantities"]

    def test_axis_validation(self):
        market = tiny_market()
        with pytest.raises(ModelError):
            refine_grid(market, [1.0], [0.0], service=fresh_service())
        with pytest.raises(ModelError):
            refine_grid(market, [0.5, 1.0], [], service=fresh_service())


class TestRefinementSavings:
    """The acceptance benchmark: the §5 grid at 2**3 x coarse resolution."""

    # Class-level cache so the expensive §5 comparison solves once per run.
    _cached = None

    @classmethod
    def _solve(cls, tmp_path_factory):
        if cls._cached is not None:
            return cls._cached
        market = section5_market()
        caps = np.asarray(POLICY_LEVELS)
        coarse = np.round(np.linspace(0.0, 2.0, 11), 10)
        fine = np.round(np.linspace(0.0, 2.0, 81), 10)  # 2**3 x finer
        store_dir = tmp_path_factory.mktemp("refine-store")
        spec = RefineSpec(levels=3, threshold=0.002)

        refine_service = fresh_service(store_dir, executor="pool")
        uniform_service = fresh_service(executor="pool")
        try:
            refined, report = refine_grid(
                market, coarse, caps, spec=spec,
                service=refine_service, workers=2,
            )
            uniform = uniform_pointwise_grid(
                market, fine, caps, service=uniform_service, workers=2
            )
        finally:
            refine_service.close()
            uniform_service.close()
        cls._cached = (refined, report, uniform, caps, fine, store_dir)
        return cls._cached

    def test_reaches_target_resolution_with_2x_fewer_solves(
        self, tmp_path_factory
    ):
        refined, report, uniform, caps, fine, _ = self._solve(
            tmp_path_factory
        )
        uniform_nodes = fine.size * caps.size
        # >= 2x fewer equilibrium solves than the uniform fine grid.
        assert report.node_solves * 2 <= uniform_nodes, (
            f"refinement used {report.node_solves} node solves, uniform "
            f"grid uses {uniform_nodes}"
        )
        # The refined axis reached the uniform grid's interior resolution
        # somewhere: its smallest spacing is the fine grid's spacing.
        spacing = np.diff(refined.prices)
        assert float(np.min(spacing)) == pytest.approx(
            float(fine[1] - fine[0])
        )
        assert report.levels_run == 3
        assert report.final_points == report.coarse_points + sum(
            report.inserted_per_level
        )

    def test_refined_cells_bitwise_equal_uniform(self, tmp_path_factory):
        refined, _, uniform, caps, fine, _ = self._solve(tmp_path_factory)
        fine_index = {float(p): j for j, p in enumerate(fine)}
        shared = 0
        for j, price in enumerate(refined.prices):
            # Midpoints round to the house axis convention, so every
            # refined node must land exactly on the fine axis.
            assert float(price) in fine_index
            for k in range(caps.size):
                a = refined.at(k, j)
                b = uniform.at(k, fine_index[float(price)])
                assert a.subsidies.tobytes() == b.subsidies.tobytes()
                assert a.state.welfare == b.state.welfare
                assert a.state.revenue == b.state.revenue
                shared += 1
        assert shared == refined.prices.size * caps.size

    def test_warm_replay_computes_nothing(self, tmp_path_factory):
        _, report, _, caps, _, store_dir = self._solve(tmp_path_factory)
        market = section5_market()
        coarse = np.round(np.linspace(0.0, 2.0, 11), 10)
        replay_service = fresh_service(store_dir)
        _, replay_report = refine_grid(
            market, coarse, caps,
            spec=RefineSpec(levels=3, threshold=0.002),
            service=replay_service, workers=2,
        )
        assert replay_report.node_solves == report.node_solves
        assert replay_service.counters.computed == 0
        assert replay_service.counters.store_hits == report.node_solves


class TestRefinementMechanics:
    def test_flat_grid_stops_early(self):
        # A generous threshold flags nothing: zero levels run, coarse
        # axis comes back unchanged.
        market = tiny_market()
        coarse = np.round(np.linspace(0.2, 1.0, 5), 10)
        grid, report = refine_grid(
            market, coarse, [0.0, 0.5],
            spec=RefineSpec(levels=3, threshold=1e6, breakpoints=False),
            service=fresh_service(),
        )
        assert report.levels_run == 0
        assert report.inserted_per_level == ()
        assert grid.prices.tolist() == coarse.tolist()
        assert report.node_solves == coarse.size * 2

    def test_uniform_pointwise_grid_shares_tasks_with_refinement(self):
        market = tiny_market()
        axis = np.round(np.linspace(0.2, 1.0, 5), 10)
        service = fresh_service()
        uniform_pointwise_grid(market, axis, [0.0], service=service)
        first_pass = service.counters.computed
        # The same nodes issued by refine_grid resolve from memory.
        refine_grid(
            market, axis, [0.0],
            spec=RefineSpec(levels=1, threshold=1e6, breakpoints=False),
            service=service,
        )
        assert service.counters.computed == first_pass


class TestExperimentSpecIntegration:
    def test_refine_rejected_for_non_grid_sweeps(self):
        base = scenario_experiment(get_scenario("oligopoly-4"))
        with pytest.raises(ModelError, match="refine"):
            dataclasses.replace(base, sweep="dynamics", refine=RefineSpec())

    def test_refined_sweep_through_the_pipeline(self):
        # The refine option routes a grid sweep through refine_grid and
        # the result still satisfies the generic model-level checks.
        from repro.engine import GridEngine
        from repro.scenarios import ScenarioSpec

        scn = ScenarioSpec(
            scenario_id="refine-smoke",
            title="tiny refinement smoke scenario",
            market=tiny_market(),
            prices=tuple(np.round(np.linspace(0.1, 1.3, 7), 10)),
            policy_levels=(0.0, 0.5),
        )
        base = scenario_experiment(scn)
        refined_spec = dataclasses.replace(
            base, refine=RefineSpec(levels=1, threshold=0.002)
        )
        engine = GridEngine(
            cache=SolveCache(), service=fresh_service()
        )
        result = run_spec(refined_spec, engine=engine)
        assert result.all_passed()
        # The same spec without refinement passes identically.
        plain = run_spec(base, engine=engine)
        assert plain.all_passed()
