"""Acceptance: figure re-runs against a warm persistent store.

The tentpole guarantee of the solve service: a second run of any
registered figure with a warm on-disk store performs **zero** equilibrium
solves, and the replayed figures are byte-identical to the cold run's.
"""

import numpy as np
import pytest

from repro.engine import SolveCache, SolveService, SolveStore
from repro.engine.service import default_service
from repro.experiments import fig04, fig05, fig07, fig10
from repro.experiments.grid import reset_engine

PRICES = np.round(np.linspace(0.0, 2.0, 7), 10)
CAPS = (0.0, 1.0)


@pytest.fixture
def warm_store(tmp_path):
    """A store directory; the shared engine is restored afterwards."""
    yield tmp_path
    reset_engine(service=None)


def fresh_process_service(store_dir) -> SolveService:
    """Simulate a new process: empty memory tiers, same store directory."""
    service = SolveService(cache=SolveCache(), store=SolveStore(store_dir))
    reset_engine(service=service)
    return service


def csv_bytes(result, out_dir):
    return {
        path.name: path.read_bytes() for path in result.write_csv(out_dir)
    }


class TestWarmStoreFigureRuns:
    @pytest.mark.parametrize(
        "module, args",
        [
            (fig04, (PRICES,)),          # §3 price sweep
            (fig05, (PRICES,)),          # §3 per-CP price sweep
            (fig07, (PRICES, CAPS)),     # §5 scalar grid panels
            (fig10, (PRICES, CAPS)),     # §5 per-CP grid panels
        ],
    )
    def test_second_run_is_solve_free_and_byte_identical(
        self, warm_store, tmp_path, module, args
    ):
        cold_service = fresh_process_service(warm_store)
        cold = module.compute(*args)
        assert cold_service.counters.computed > 0

        replay_service = fresh_process_service(warm_store)
        warm = module.compute(*args)
        assert replay_service.counters.computed == 0
        assert replay_service.counters.store_hits > 0
        assert csv_bytes(warm, tmp_path / "warm") == csv_bytes(
            cold, tmp_path / "cold"
        )
        assert [c.passed for c in warm.checks] == [
            c.passed for c in cold.checks
        ]

    def test_figures_sharing_a_grid_share_store_rows(self, warm_store):
        service = fresh_process_service(warm_store)
        fig07.compute(PRICES, CAPS)
        solves = service.counters.computed
        # Same scenario, same axes, different quantities: no new rows even
        # within one process once fig7 populated the tiers.
        fig10.compute(PRICES, CAPS)
        assert service.counters.computed == solves

    def test_default_service_counters_reflect_shared_engine(self, warm_store):
        service = fresh_process_service(warm_store)
        assert default_service() is service
        fig04.compute(PRICES)
        assert default_service().counters.computed > 0
