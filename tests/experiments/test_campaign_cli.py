"""The ``campaign`` CLI verb: flags, JSON output, resumability, guards."""

import json

import pytest

from repro.campaigns import CampaignSpec
from repro.experiments.runner import main
from repro.io import load_campaign, save_campaign


def small_spec() -> CampaignSpec:
    return CampaignSpec(
        campaign_id="cli-file",
        seed_count=2,
        axes={"n_types": (4, 6)},
        base_params={"prices": [0.8, 1.2]},
    )

SPEC_FLAGS = [
    "--campaign-id", "cli",
    "--rows", "2",
    "--axis", "n_types=4,6",
    "--prices", "0.8,1.2",
]


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestRun:
    def test_cold_run_json(self, capsys, tmp_path):
        code, out, _ = run_cli(
            capsys,
            "campaign", "run", *SPEC_FLAGS,
            "--cache-dir", str(tmp_path), "--json",
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["campaign_id"] == "cli"
        assert payload["rows_total"] == 4
        assert payload["rows_computed"] == 4
        assert payload["rows_resumed"] == 0
        assert payload["cache"]["computed"] > 0
        assert payload["summary"]["welfare"]["count"] == 4

    def test_second_run_resumes_with_zero_solves(self, capsys, tmp_path):
        run_cli(
            capsys,
            "campaign", "run", *SPEC_FLAGS,
            "--cache-dir", str(tmp_path), "--json",
        )
        code, out, _ = run_cli(
            capsys,
            "campaign", "run", *SPEC_FLAGS,
            "--cache-dir", str(tmp_path), "--json",
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["rows_computed"] == 0
        assert payload["rows_resumed"] == 4
        assert payload["cache"]["computed"] == 0

    def test_run_campaign_alias(self, capsys, tmp_path):
        code, out, _ = run_cli(
            capsys,
            "run", "campaign", *SPEC_FLAGS,
            "--cache-dir", str(tmp_path), "--json",
        )
        assert code == 0
        assert json.loads(out)["rows_total"] == 4

    def test_run_without_store_is_refused(self, capsys):
        code, _, err = run_cli(
            capsys, "campaign", "run", *SPEC_FLAGS, "--no-cache"
        )
        assert code == 2
        assert "persistent store" in err

    def test_spec_file_and_save_spec(self, capsys, tmp_path):
        spec = small_spec()
        spec_path = tmp_path / "spec.json"
        save_campaign(spec, spec_path)
        code, out, _ = run_cli(
            capsys,
            "campaign", "run", "--spec", str(spec_path),
            "--save-spec", str(tmp_path / "copy.json"),
            "--cache-dir", str(tmp_path / "cache"), "--json",
        )
        assert code == 0
        assert json.loads(out)["campaign"] == spec.digest()
        assert load_campaign(tmp_path / "copy.json") == spec

    def test_spec_file_excludes_synthesis_flags(self, capsys, tmp_path):
        spec_path = tmp_path / "spec.json"
        save_campaign(small_spec(), spec_path)
        with pytest.raises(SystemExit):
            main([
                "campaign", "run", "--spec", str(spec_path), "--rows", "3",
                "--cache-dir", str(tmp_path),
            ])
        assert "--spec is exclusive" in capsys.readouterr().err

    def test_bad_axis_spelling_is_a_usage_error(self, capsys, tmp_path):
        with pytest.raises(SystemExit):
            main([
                "campaign", "run", "--axis", "n_types",
                "--cache-dir", str(tmp_path),
            ])


class TestQueries:
    @pytest.fixture
    def warm(self, capsys, tmp_path):
        run_cli(
            capsys,
            "campaign", "run", *SPEC_FLAGS,
            "--cache-dir", str(tmp_path), "--json",
        )
        return tmp_path

    def test_status(self, capsys, warm):
        code, out, _ = run_cli(
            capsys,
            "campaign", "status", *SPEC_FLAGS,
            "--cache-dir", str(warm), "--json",
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["rows_done"] == 4
        assert payload["rows_missing"] == 0
        assert "welfare" in payload["metrics"]

    def test_status_of_a_cold_warehouse(self, capsys, tmp_path):
        code, out, _ = run_cli(
            capsys,
            "campaign", "status", *SPEC_FLAGS,
            "--cache-dir", str(tmp_path), "--json",
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["rows_done"] == 0
        assert payload["rows_missing"] == 4

    def test_summary_json_and_csv(self, capsys, warm):
        code, out, _ = run_cli(
            capsys,
            "campaign", "summary", *SPEC_FLAGS,
            "--cache-dir", str(warm), "--json",
        )
        assert code == 0
        assert json.loads(out)["welfare"]["count"] == 4
        code, out, _ = run_cli(
            capsys,
            "campaign", "summary", *SPEC_FLAGS,
            "--cache-dir", str(warm), "--csv", "--metric", "welfare",
        )
        assert code == 0
        lines = out.strip().splitlines()
        assert lines[0].startswith("metric,count,")
        assert len(lines) == 2 and lines[1].startswith("welfare,4,")

    def test_summary_of_empty_campaign_fails(self, capsys, warm):
        code, _, err = run_cli(
            capsys,
            "campaign", "summary", "--campaign-id", "ghost",
            "--cache-dir", str(warm),
        )
        assert code == 2
        assert "no rows" in err

    def test_unknown_metric_fails(self, capsys, warm):
        code, _, err = run_cli(
            capsys,
            "campaign", "summary", *SPEC_FLAGS,
            "--cache-dir", str(warm), "--metric", "vibes",
        )
        assert code == 2
        assert "unknown metric" in err

    def test_query_limit_and_metric(self, capsys, warm):
        code, out, _ = run_cli(
            capsys,
            "campaign", "query", *SPEC_FLAGS,
            "--cache-dir", str(warm),
            "--metric", "welfare", "--limit", "2", "--json",
        )
        assert code == 0
        payload = json.loads(out)
        assert len(payload) == 2
        assert list(payload[0]["metrics"]) == ["welfare"]
        assert payload[0]["index"] == 0


class TestBenchSummary:
    def test_missing_bench_dir_is_not_an_error(self, capsys, tmp_path):
        code, out, _ = run_cli(
            capsys,
            "bench-summary", "--bench-dir", str(tmp_path / "missing"),
        )
        assert code == 0
        assert "no bench records" in out

    def test_empty_bench_dir_is_not_an_error(self, capsys, tmp_path):
        code, out, _ = run_cli(
            capsys, "bench-summary", "--bench-dir", str(tmp_path)
        )
        assert code == 0
        assert "no bench records" in out

    def test_missing_bench_dir_json_is_empty_array(self, capsys, tmp_path):
        code, out, _ = run_cli(
            capsys,
            "bench-summary",
            "--bench-dir", str(tmp_path / "missing"),
            "--json",
        )
        assert code == 0
        assert json.loads(out) == []
