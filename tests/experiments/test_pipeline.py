"""Unit tests for the spec-driven experiment pipeline."""

import numpy as np
import pytest

from repro.engine import GridEngine
from repro.exceptions import ModelError
from repro.experiments.pipeline import (
    ExperimentSpec,
    PanelSpec,
    check,
    run_spec,
    scenario_experiment,
)
from repro.experiments.scenarios import section5_market
from repro.scenarios import ScenarioSpec, scaled_market

PRICES = (0.0, 0.5, 1.0, 1.5, 2.0)
CAPS = (0.0, 1.0)


@pytest.fixture()
def scenario() -> ScenarioSpec:
    return ScenarioSpec(
        scenario_id="pipe-test",
        title="pipeline test scenario",
        market=section5_market(),
        prices=PRICES,
        policy_levels=CAPS,
    )


class TestPanelSpec:
    def test_unknown_quantity_rejected(self):
        with pytest.raises(ModelError):
            PanelSpec(figure_id="x", title="x", quantity="nope", y_label="y")

    def test_per_provider_classification(self):
        scalar = PanelSpec(figure_id="x", title="x", quantity="revenue", y_label="R")
        vector = PanelSpec(figure_id="x", title="x", quantity="subsidies", y_label="s")
        assert not scalar.per_provider
        assert vector.per_provider


class TestExperimentSpec:
    def test_bad_sweep_rejected(self, scenario):
        with pytest.raises(ModelError):
            ExperimentSpec(
                experiment_id="x",
                title="x",
                scenario=scenario,
                sweep="diagonal",
                panels=(
                    PanelSpec(
                        figure_id="x", title="x", quantity="revenue", y_label="R"
                    ),
                ),
            )

    def test_empty_panels_rejected(self, scenario):
        with pytest.raises(ModelError):
            ExperimentSpec(
                experiment_id="x",
                title="x",
                scenario=scenario,
                sweep="grid",
                panels=(),
            )

    def test_scenario_by_registry_id(self):
        spec = ExperimentSpec(
            experiment_id="x",
            title="x",
            scenario="section5",
            sweep="grid",
            panels=(
                PanelSpec(figure_id="x", title="x", quantity="revenue", y_label="R"),
            ),
        )
        assert spec.resolve_scenario().scenario_id == "section5"


class TestRunSpec:
    def test_price_sweep_matches_direct_solves(self, scenario):
        spec = ExperimentSpec(
            experiment_id="sweep",
            title="price sweep",
            scenario=scenario,
            sweep="price",
            panels=(
                PanelSpec(
                    figure_id="sweep-theta",
                    title="θ(p)",
                    quantity="aggregate_throughput",
                    y_label="θ",
                    series_name="theta",
                ),
            ),
        )
        result = run_spec(spec, engine=GridEngine())
        series = result.figures[0].series_by_name("theta")
        market = scenario.market
        direct = [
            market.with_price(float(p)).solve().aggregate_throughput
            for p in PRICES
        ]
        # The zero-cap shortcut makes the engine route bitwise-identical.
        assert list(series.y) == direct

    def test_grid_sweep_series_per_policy_level(self, scenario):
        spec = ExperimentSpec(
            experiment_id="grid",
            title="grid sweep",
            scenario=scenario,
            sweep="grid",
            panels=(
                PanelSpec(
                    figure_id="grid-rev",
                    title="R",
                    quantity="revenue",
                    y_label="R",
                ),
            ),
        )
        result = run_spec(spec, engine=GridEngine())
        assert result.figures[0].names() == ["q=0", "q=1"]

    def test_provider_panels_expand_per_cp_on_grid(self, scenario):
        spec = ExperimentSpec(
            experiment_id="percp",
            title="per-CP",
            scenario=scenario,
            sweep="grid",
            panels=(
                PanelSpec(
                    figure_id="percp",
                    title="s_i of {name}",
                    quantity="subsidies",
                    y_label="s",
                ),
            ),
        )
        result = run_spec(spec, engine=GridEngine())
        assert len(result.figures) == scenario.size
        names = scenario.market.provider_names()
        assert result.figures[0].figure_id == f"percp-{names[0]}"
        assert names[0] in result.figures[0].title

    def test_checks_evaluate_with_detail(self, scenario):
        spec = ExperimentSpec(
            experiment_id="checked",
            title="checked",
            scenario=scenario,
            sweep="grid",
            panels=(
                PanelSpec(
                    figure_id="checked-rev",
                    title="R",
                    quantity="revenue",
                    y_label="R",
                ),
            ),
            checks=(
                check("always true", lambda v: True),
                check("with detail", lambda v: (False, "why not")),
            ),
        )
        result = run_spec(spec, engine=GridEngine())
        assert result.checks[0].passed
        assert not result.checks[1].passed
        assert result.checks[1].detail == "why not"

    def test_axis_overrides(self, scenario):
        spec = ExperimentSpec(
            experiment_id="axes",
            title="axes",
            scenario=scenario,
            sweep="grid",
            panels=(
                PanelSpec(
                    figure_id="axes-rev",
                    title="R",
                    quantity="revenue",
                    y_label="R",
                ),
            ),
        )
        result = run_spec(
            spec, prices=(0.0, 1.0), caps=(0.0,), engine=GridEngine()
        )
        assert list(result.figures[0].x) == [0.0, 1.0]
        assert result.figures[0].names() == ["q=0"]

    def test_scenario_override_substitutes_market(self, scenario):
        spec = ExperimentSpec(
            experiment_id="sub",
            title="sub",
            scenario=scenario,
            sweep="grid",
            panels=(
                PanelSpec(
                    figure_id="sub-rev",
                    title="R",
                    quantity="revenue",
                    y_label="R",
                ),
            ),
        )
        other = scaled_market(4, prices=PRICES, policy_levels=CAPS)
        result = run_spec(spec, scenario=other, engine=GridEngine())
        direct = other.market.with_price(1.0).solve().revenue
        j = PRICES.index(1.0)
        assert result.figures[0].series_by_name("q=0").y[j] == direct


class TestScenarioExperiment:
    def test_generic_sweep_passes_on_paper_market(self, scenario):
        spec = scenario_experiment(scenario)
        result = run_spec(spec, engine=GridEngine())
        assert result.experiment_id == "pipe-test"
        failed = [c.name for c in result.checks if not c.passed]
        assert not failed
        ids = [figure.figure_id for figure in result.figures]
        assert "pipe-test-revenue" in ids
        assert "pipe-test-welfare" in ids

    def test_theorem2_check_survives_caps_override(self):
        # The spec's axis has q=0, but the run overrides caps away from it:
        # the check must locate (or gracefully miss) the q=0 row on the
        # solved grid instead of blindly reading row 0.
        spec = scenario_experiment(
            scaled_market(4, policy_levels=(0.0, 1.0), prices=PRICES)
        )
        result = run_spec(spec, caps=(1.0, 2.0), engine=GridEngine())
        thm2 = next(c for c in result.checks if "Thm 2" in c.name)
        assert thm2.passed
        assert thm2.detail == "no q=0 row on the solved grid"

    def test_theorem2_check_needs_zero_cap(self):
        spec = scenario_experiment(
            scaled_market(4, policy_levels=(0.5, 1.0), prices=PRICES)
        )
        names = [c.name for c in spec.checks]
        assert not any("Thm 2" in name for name in names)
        spec = scenario_experiment(
            scaled_market(4, policy_levels=(0.0, 1.0), prices=PRICES)
        )
        names = [c.name for c in spec.checks]
        assert any("Thm 2" in name for name in names)
