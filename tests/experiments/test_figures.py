"""Integration tests regenerating every figure on a coarse grid.

Full-resolution regeneration (41 prices × 5 policies) lives in the
benchmarks; here each experiment runs on a thinner price axis to keep the
suite fast while still exercising the complete pipeline — equilibrium grid,
series extraction, CSV output and the qualitative shape checks.
"""

import numpy as np
import pytest

from repro.experiments import fig04, fig05, fig07, fig08, fig09, fig10, fig11
from repro.experiments.base import (
    is_nondecreasing,
    is_nonincreasing,
    is_single_peaked,
)

COARSE_PRICES = np.round(np.linspace(0.0, 2.0, 21), 10)
COARSE_CAPS = (0.0, 0.5, 1.0, 1.5, 2.0)


@pytest.fixture(scope="module")
def fig4_result():
    return fig04.compute(COARSE_PRICES)


@pytest.fixture(scope="module")
def fig5_result():
    return fig05.compute(COARSE_PRICES)


@pytest.fixture(scope="module")
def grid_results():
    """Compute the §5 figures once for the whole module (shared cache)."""
    return {
        "fig7": fig07.compute(COARSE_PRICES, COARSE_CAPS),
        "fig8": fig08.compute(COARSE_PRICES, COARSE_CAPS),
        "fig9": fig09.compute(COARSE_PRICES, COARSE_CAPS),
        "fig10": fig10.compute(COARSE_PRICES, COARSE_CAPS),
        "fig11": fig11.compute(COARSE_PRICES, COARSE_CAPS),
    }


class TestFig4:
    def test_all_checks_pass(self, fig4_result):
        failed = [c.name for c in fig4_result.checks if not c.passed]
        assert not failed

    def test_panels(self, fig4_result):
        assert [f.figure_id for f in fig4_result.figures] == [
            "fig4-left",
            "fig4-right",
        ]

    def test_throughput_series_decreasing(self, fig4_result):
        theta = fig4_result.figures[0].series_by_name("theta").y
        assert is_nonincreasing(theta)

    def test_revenue_single_peaked(self, fig4_result):
        revenue = fig4_result.figures[1].series_by_name("revenue").y
        assert is_single_peaked(revenue)

    def test_csv_output(self, fig4_result, tmp_path):
        paths = fig4_result.write_csv(tmp_path)
        assert len(paths) == 2
        assert all(p.exists() for p in paths)

    def test_render_mentions_checks(self, fig4_result):
        out = fig4_result.render()
        assert "PASS" in out


class TestFig5:
    def test_all_checks_pass(self, fig5_result):
        failed = [c.name for c in fig5_result.checks if not c.passed]
        assert not failed

    def test_nine_series(self, fig5_result):
        assert len(fig5_result.figures[0].series) == 9

    def test_low_sensitivity_cp_dominates(self, fig5_result):
        # alpha=1, beta=1 has the largest throughput at p=1 (least
        # price- and congestion-sensitive users).
        figure = fig5_result.figures[0]
        mid = len(figure.x) // 2
        best = max(figure.series, key=lambda s: s.y[mid])
        assert best.name == "a1b1"


class TestSection5Figures:
    def test_all_checks_pass(self, grid_results):
        for name, result in grid_results.items():
            failed = [c.name for c in result.checks if not c.passed]
            assert not failed, f"{name}: {failed}"

    def test_eight_panels_each(self, grid_results):
        for name in ("fig8", "fig9", "fig10", "fig11"):
            assert len(grid_results[name].figures) == 8

    def test_fig7_revenue_monotone_in_q(self, grid_results):
        left = grid_results["fig7"].figures[0]
        # At each price index the five q-series must be ordered.
        ys = np.array([s.y for s in left.series])
        for j in range(ys.shape[1]):
            assert is_nondecreasing(ys[:, j], tol=1e-7)

    def test_fig8_zero_cap_series_is_zero(self, grid_results):
        for panel in grid_results["fig8"].figures:
            assert np.all(panel.series_by_name("q=0").y == 0.0)

    def test_fig10_baseline_matches_fig4_style_solve(self, grid_results):
        # The q=0 series of fig10 must equal a direct one-sided solve.
        from repro.experiments.scenarios import section5_market

        market = section5_market()
        panel = grid_results["fig10"].figures[0]
        j = 10  # p = 1.0 on the coarse grid
        p = float(panel.x[j])
        direct = market.with_price(p).solve().throughputs[0]
        assert panel.series_by_name("q=0").y[j] == pytest.approx(direct, rel=1e-9)

    def test_fig11_utilities_consistent_with_fig8_and_fig10(self, grid_results):
        # U_i = (v_i - s_i) * theta_i ties the three figures together.
        from repro.experiments.scenarios import SECTION5_PARAMETERS

        for i in range(8):
            v = SECTION5_PARAMETERS[i][2]
            s = grid_results["fig8"].figures[i].series_by_name("q=2").y
            theta = grid_results["fig10"].figures[i].series_by_name("q=2").y
            u = grid_results["fig11"].figures[i].series_by_name("q=2").y
            np.testing.assert_allclose(u, (v - s) * theta, rtol=1e-8)
