"""Unit tests for the exception hierarchy."""

import pytest

from repro.exceptions import (
    BracketError,
    ConvergenceError,
    EquilibriumError,
    ModelError,
    ReproError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc_type",
        [ModelError, ConvergenceError, BracketError, EquilibriumError],
    )
    def test_all_derive_from_repro_error(self, exc_type):
        assert issubclass(exc_type, ReproError)

    def test_single_except_clause_catches_library_errors(self):
        for exc in (ModelError("m"), BracketError("b"), EquilibriumError("e")):
            with pytest.raises(ReproError):
                raise exc


class TestConvergenceError:
    def test_carries_diagnostics(self):
        error = ConvergenceError("failed", iterations=42, residual=1e-3)
        assert error.iterations == 42
        assert error.residual == 1e-3
        assert "failed" in str(error)

    def test_diagnostics_optional(self):
        error = ConvergenceError("failed")
        assert error.iterations is None
        assert error.residual is None
