"""Integration tests of the numerical substrate against the game layer.

These exercise solver components *on the game's own maps* (rather than toy
functions): Anderson acceleration on the Jacobi best-response map, the
basic projection method on −u, and failure-injection paths of the
certified front-end.
"""

import numpy as np
import pytest

from repro.core.best_response import best_response_profile
from repro.core.equilibrium import solve_equilibrium
from repro.core.game import SubsidizationGame
from repro.exceptions import EquilibriumError
from repro.solvers.fixed_point import anderson_fixed_point, damped_fixed_point
from repro.solvers.vi import projection_method_box


class TestFixedPointSolversOnTheGame:
    def test_anderson_accelerates_jacobi_best_response(self, four_cp_market):
        game = SubsidizationGame(four_cp_market, 1.0)
        mapping = lambda s: best_response_profile(game, s)  # noqa: E731
        picard = damped_fixed_point(mapping, np.zeros(4), tol=1e-9)
        anderson = anderson_fixed_point(mapping, np.zeros(4), tol=1e-9)
        np.testing.assert_allclose(anderson.x, picard.x, atol=1e-7)
        reference = solve_equilibrium(game)
        np.testing.assert_allclose(anderson.x, reference.subsidies, atol=1e-7)

    def test_projection_method_solves_the_game_vi(self, two_cp_market):
        game = SubsidizationGame(two_cp_market, 0.8)
        result = projection_method_box(
            game.negated_marginal_utilities,
            np.zeros(2),
            0.0,
            0.8,
            step=0.5,
            tol=1e-9,
        )
        reference = solve_equilibrium(game)
        np.testing.assert_allclose(result.x, reference.subsidies, atol=1e-6)


class TestFailureInjection:
    def test_front_end_reports_all_attempts_on_total_failure(
        self, two_cp_market, monkeypatch
    ):
        game = SubsidizationGame(two_cp_market, 1.0)
        # Make every marginal utility NaN: no solver can certify anything.
        monkeypatch.setattr(
            SubsidizationGame,
            "marginal_utilities",
            lambda self, s=None: np.full(self.size, np.nan),
        )
        with pytest.raises(EquilibriumError) as excinfo:
            solve_equilibrium(game)
        message = str(excinfo.value)
        assert "best_response" in message
        assert "vi" in message

    def test_certification_rejects_near_misses(self, four_cp_market):
        # An absurdly tight certification tolerance cannot be met by the
        # default solver tolerances; the front-end must refuse rather than
        # return an uncertified profile.
        game = SubsidizationGame(four_cp_market, 1.0)
        with pytest.raises(EquilibriumError):
            solve_equilibrium(game, tol=1e-6, certify_tol=1e-15)
