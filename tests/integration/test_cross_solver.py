"""Cross-solver and cross-family integration tests.

The library's layers admit redundant computation paths (analytic vs finite
difference, best response vs VI, Picard vs Anderson, exponential vs other
families); these tests force the paths to agree.
"""

import numpy as np
import pytest

from repro.core.equilibrium import (
    solve_equilibrium,
    solve_equilibrium_best_response,
    solve_equilibrium_vi,
)
from repro.core.game import SubsidizationGame
from repro.network.demand import LogitDemand, ShiftedPowerDemand
from repro.network.throughput import PowerLawThroughput, RationalThroughput
from repro.network.utilization import MM1Utilization, PowerLawUtilization
from repro.providers import AccessISP, ContentProvider, Market, exponential_cp
from repro.simulation import MarketSimulation


def mixed_family_market(price=1.0) -> Market:
    """CPs drawn from three different functional families."""
    return Market(
        [
            exponential_cp(3.0, 2.0, value=0.9, name="exp"),
            ContentProvider(
                demand=LogitDemand(alpha=4.0, midpoint=0.8, scale=1.2),
                throughput=PowerLawThroughput(beta=3.0),
                value=0.7,
                name="logit-power",
            ),
            ContentProvider(
                demand=ShiftedPowerDemand(alpha=3.0),
                throughput=RationalThroughput(beta=2.0),
                value=0.5,
                name="power-rational",
            ),
        ],
        AccessISP(price=price, capacity=1.0),
    )


class TestMixedFamilies:
    def test_equilibrium_exists_and_certifies(self):
        game = SubsidizationGame(mixed_family_market(), 0.6)
        eq = solve_equilibrium(game)
        assert eq.kkt_residual < 1e-7
        assert np.all(eq.subsidies >= 0.0)
        assert np.all(eq.subsidies <= 0.6 + 1e-12)

    def test_br_and_vi_agree(self):
        game = SubsidizationGame(mixed_family_market(), 0.6)
        br = solve_equilibrium_best_response(game, tol=1e-11)
        vi = solve_equilibrium_vi(game, tol=1e-9)
        np.testing.assert_allclose(br.subsidies, vi.subsidies, atol=1e-6)

    def test_simulation_converges_to_static_equilibrium(self):
        market = mixed_family_market()
        eq = solve_equilibrium(SubsidizationGame(market, 0.6))
        trace = MarketSimulation(market, cap=0.6).run(30)
        assert trace.distance_to_profile(eq.subsidies)[-1] < 1e-7

    def test_deregulation_still_raises_revenue(self):
        # The qualitative Corollary 1 story is not an exponential artifact.
        market = mixed_family_market(price=0.8)
        base = solve_equilibrium(SubsidizationGame(market, 0.0)).state.revenue
        dereg = solve_equilibrium(SubsidizationGame(market, 0.6)).state.revenue
        assert dereg > base


class TestAlternativeUtilizations:
    @pytest.mark.parametrize(
        "utilization",
        [PowerLawUtilization(gamma=2.0), MM1Utilization()],
        ids=["power-law", "mm1"],
    )
    def test_equilibrium_across_utilization_metrics(self, utilization):
        market = Market(
            [
                exponential_cp(2.0, 2.0, value=1.0),
                exponential_cp(5.0, 3.0, value=0.6),
            ],
            AccessISP(price=1.0, capacity=2.0, utilization=utilization),
        )
        game = SubsidizationGame(market, 0.5)
        eq = solve_equilibrium(game)
        assert eq.kkt_residual < 1e-7
        # Lemma 3 direction: subsidies raised utilization vs the baseline.
        assert eq.state.utilization >= market.solve().utilization - 1e-12

    def test_mm1_capacity_wall_tempers_subsidies(self):
        # Near the M/M/1 wall additional traffic is brutally expensive, so
        # equilibrium subsidies are smaller than under the linear metric.
        linear_market = Market(
            [exponential_cp(5.0, 2.0, value=1.0)],
            AccessISP(price=0.5, capacity=1.0),
        )
        mm1_market = Market(
            [exponential_cp(5.0, 2.0, value=1.0)],
            AccessISP(price=0.5, capacity=1.0, utilization=MM1Utilization()),
        )
        s_linear = solve_equilibrium(
            SubsidizationGame(linear_market, 0.9)
        ).subsidies[0]
        s_mm1 = solve_equilibrium(SubsidizationGame(mm1_market, 0.9)).subsidies[0]
        assert s_mm1 < s_linear


class TestPublicApi:
    def test_top_level_exports_work_together(self):
        # The README quickstart, as a test.
        import repro

        market = repro.Market(
            [
                repro.exponential_cp(alpha=2, beta=2, value=1.0),
                repro.exponential_cp(alpha=5, beta=5, value=0.5),
            ],
            repro.AccessISP(price=1.0, capacity=1.0),
        )
        game = repro.SubsidizationGame(market, cap=1.0)
        eq = repro.solve_equilibrium(game)
        assert repro.is_equilibrium(game, eq.subsidies)
        assert eq.state.revenue > 0.0
        assert repro.welfare(eq.state.throughputs, market.values) == (
            pytest.approx(eq.state.welfare)
        )

    def test_version_exported(self):
        import repro

        assert repro.__version__ == "1.0.0"


class TestThreeSolverAgreement:
    def test_br_vi_and_newton_coincide(self):
        from repro.core.newton import solve_equilibrium_newton

        game = SubsidizationGame(mixed_family_market(), 0.6)
        br = solve_equilibrium_best_response(game, tol=1e-11)
        vi = solve_equilibrium_vi(game, tol=1e-9)
        newton = solve_equilibrium_newton(game)
        np.testing.assert_allclose(newton.subsidies, br.subsidies, atol=1e-7)
        np.testing.assert_allclose(newton.subsidies, vi.subsidies, atol=1e-6)
