"""End-to-end numerical verification of every theorem in the paper.

One test class per result, on the paper's own exponential family. These are
the library's strongest correctness guarantees: each of the paper's
analytical statements is checked against brute-force computation on solved
models.
"""

import numpy as np
import pytest

from repro.core.characterization import thresholds
from repro.core.dynamics import (
    deregulation_effect,
    equilibrium_sensitivity,
    profitability_comparative_static,
)
from repro.core.equilibrium import (
    solve_equilibrium,
    solve_equilibrium_best_response,
    solve_equilibrium_vi,
)
from repro.core.game import SubsidizationGame
from repro.core.policy import policy_effect
from repro.core.revenue import marginal_revenue_decomposition
from repro.core.uniqueness import p_function_violations
from repro.core.welfare import marginal_welfare_criterion
from repro.network.sensitivity import price_sensitivity, system_sensitivity
from repro.network.system import CongestionSystem, TrafficClass
from repro.network.throughput import ExponentialThroughput
from repro.network.utilization import LinearUtilization
from repro.providers import AccessISP, Market, exponential_cp


def paper_market(price=1.0) -> Market:
    """Four CP types spanning the §5 parameter corners."""
    return Market(
        [
            exponential_cp(2.0, 2.0, value=1.0),
            exponential_cp(5.0, 5.0, value=0.5),
            exponential_cp(2.0, 5.0, value=1.0),
            exponential_cp(5.0, 2.0, value=0.5),
        ],
        AccessISP(price=price, capacity=1.0),
    )


class TestLemma1Uniqueness:
    def test_fixed_point_is_unique_along_gap(self):
        system = CongestionSystem(LinearUtilization(), 1.0)
        classes = [
            TrafficClass(1.0, ExponentialThroughput(beta=2.0)),
            TrafficClass(0.5, ExponentialThroughput(beta=4.0)),
        ]
        phi_star = system.solve_utilization(classes)
        # The gap changes sign exactly once over a wide scan.
        grid = np.linspace(0.0, 5.0, 2001)
        signs = np.sign([system.gap(p, classes) for p in grid])
        assert np.sum(np.abs(np.diff(signs)) > 0) == 1
        assert system.gap(phi_star, classes) == pytest.approx(0.0, abs=1e-10)


class TestTheorem1:
    def test_capacity_and_user_effects(self):
        system = CongestionSystem(LinearUtilization(), 1.0)
        classes = [
            TrafficClass(0.8, ExponentialThroughput(beta=1.0)),
            TrafficClass(0.4, ExponentialThroughput(beta=3.0)),
        ]
        sens = system_sensitivity(system, classes)
        assert sens.dphi_dmu < 0.0
        assert np.all(sens.dphi_dm > 0.0)
        assert np.all(sens.dtheta_dmu > 0.0)
        # Own-population effect positive, cross effect negative.
        assert sens.dtheta_dm[0, 0] > 0.0 > sens.dtheta_dm[0, 1]


class TestTheorem2:
    def test_price_depresses_utilization_and_aggregate_throughput(self):
        market = paper_market()
        demands = [cp.demand for cp in market.providers]
        throughputs = [cp.throughput for cp in market.providers]
        for p in (0.1, 0.5, 1.0, 1.8):
            sens = price_sensitivity(market.system, demands, throughputs, p)
            assert sens.dphi_dp <= 0.0
            assert sens.aggregate_dtheta_dp <= 0.0


class TestTheorem3:
    def test_threshold_equation_at_equilibria(self):
        for cap in (0.2, 0.5, 1.0):
            game = SubsidizationGame(paper_market(), cap)
            eq = solve_equilibrium(game)
            tau = thresholds(game, eq.subsidies)
            np.testing.assert_allclose(
                eq.subsidies, np.minimum(tau, cap), atol=1e-7
            )

    def test_corner_condition_for_non_subsidizers(self):
        # v_i <= theta_i / (dtheta_i/ds_i) whenever s_i = 0.
        market = paper_market(price=1.5)
        game = SubsidizationGame(market, 1.0)
        eq = solve_equilibrium(game)
        diag = game.marginal_diagnostics(eq.subsidies)
        for i in range(market.size):
            if eq.subsidies[i] < 1e-10:
                bound = diag.state.throughputs[i] / diag.dtheta_own_ds[i]
                assert market.providers[i].value <= bound + 1e-8


class TestTheorem4:
    def test_p_function_condition_sampled_clean(self):
        game = SubsidizationGame(paper_market(), 1.0)
        assert p_function_violations(game, samples=15, seed=1) == []

    def test_solvers_agree_on_the_unique_equilibrium(self):
        game = SubsidizationGame(paper_market(), 1.0)
        br = solve_equilibrium_best_response(game, tol=1e-11)
        vi = solve_equilibrium_vi(game, tol=1e-10)
        np.testing.assert_allclose(br.subsidies, vi.subsidies, atol=1e-6)

    def test_unique_from_many_starting_points(self):
        game = SubsidizationGame(paper_market(), 1.0)
        reference = solve_equilibrium(game).subsidies
        rng = np.random.default_rng(0)
        for _ in range(5):
            start = rng.uniform(0.0, 1.0, 4)
            result = solve_equilibrium(game, initial=start)
            np.testing.assert_allclose(result.subsidies, reference, atol=1e-8)


class TestTheorem5:
    def test_profitability_monotonicity_across_scenarios(self):
        for price in (0.6, 1.0, 1.4):
            for cap in (0.3, 1.0):
                game = SubsidizationGame(paper_market(price), cap)
                for i in (0, 1):
                    old = game.market.providers[i].value
                    before, after = profitability_comparative_static(
                        game, i, old + 0.25
                    )
                    assert after[i] >= before[i] - 1e-9


class TestTheorem6:
    def test_sensitivities_match_finite_differences(self):
        game = SubsidizationGame(paper_market(), 0.35)
        eq = solve_equilibrium(game)
        sens = equilibrium_sensitivity(game, eq.subsidies)
        h = 1e-5
        fd_q = (
            solve_equilibrium(game.with_cap(0.35 + h)).subsidies
            - solve_equilibrium(game.with_cap(0.35 - h)).subsidies
        ) / (2.0 * h)
        fd_p = (
            solve_equilibrium(game.with_price(1.0 + h)).subsidies
            - solve_equilibrium(game.with_price(1.0 - h)).subsidies
        ) / (2.0 * h)
        np.testing.assert_allclose(sens.ds_dq, fd_q, atol=1e-4)
        np.testing.assert_allclose(sens.ds_dp, fd_p, atol=1e-4)


class TestCorollary1:
    def test_deregulation_monotonicity(self):
        # phi, R and s all (weakly) rise with q, at fixed price.
        game = SubsidizationGame(paper_market(price=0.8), 0.25)
        eq = solve_equilibrium(game)
        effect = deregulation_effect(game, eq.subsidies)
        assert effect.dphi_dq >= 0.0
        assert effect.drevenue_dq >= 0.0
        assert np.all(effect.ds_dq >= -1e-12)

    def test_monotone_along_a_global_sweep(self):
        market = paper_market(price=0.8)
        caps = np.linspace(0.0, 1.5, 13)
        phis, revenues = [], []
        previous = None
        for q in caps:
            eq = solve_equilibrium(
                SubsidizationGame(market, float(q)), initial=previous
            )
            previous = eq.subsidies
            phis.append(eq.state.utilization)
            revenues.append(eq.state.revenue)
        assert np.all(np.diff(phis) >= -1e-9)
        assert np.all(np.diff(revenues) >= -1e-9)


class TestTheorem7:
    def test_decomposition_at_several_prices(self):
        for p in (0.6, 0.9, 1.3):
            market = paper_market(p)
            game = SubsidizationGame(market, 1.0)
            eq = solve_equilibrium(game)
            decomposition = marginal_revenue_decomposition(game, eq.subsidies)
            h = 1e-5

            def revenue_at(price):
                return solve_equilibrium(
                    SubsidizationGame(market.with_price(price), 1.0),
                    initial=eq.subsidies,
                ).state.revenue

            fd = (revenue_at(p + h) - revenue_at(p - h)) / (2.0 * h)
            assert decomposition.total == pytest.approx(fd, rel=1e-3, abs=1e-6)


class TestTheorem8:
    def test_full_policy_effect_with_price_response(self):
        market = paper_market()
        q0, slope = 0.2, 0.4
        effect = policy_effect(market, q0, dp_dq=slope)
        h = 1e-5

        def states_at(q):
            priced = market.with_price(1.0 + slope * (q - q0))
            eq = solve_equilibrium(SubsidizationGame(priced, q))
            return eq.state

        hi, lo = states_at(q0 + h), states_at(q0 - h)
        np.testing.assert_allclose(
            effect.dm_dq, (hi.populations - lo.populations) / (2 * h), atol=1e-4
        )
        assert effect.dphi_dq == pytest.approx(
            (hi.utilization - lo.utilization) / (2 * h), abs=1e-4
        )
        np.testing.assert_allclose(
            effect.dtheta_dq, (hi.throughputs - lo.throughputs) / (2 * h),
            atol=1e-4,
        )


class TestCorollary2:
    def test_welfare_criterion_sign(self):
        market = paper_market(price=0.8)
        for q in (0.1, 0.25, 0.4):
            effect = policy_effect(market, q)
            criterion = marginal_welfare_criterion(market, effect)
            if criterion.applicable and abs(criterion.dwelfare_dq) > 1e-10:
                assert criterion.predicts_increase() == (
                    criterion.dwelfare_dq > 0.0
                )

    def test_welfare_rises_under_deregulation_at_fixed_price(self):
        market = paper_market(price=0.8)
        welfare_q0 = solve_equilibrium(
            SubsidizationGame(market, 0.0)
        ).state.welfare
        welfare_q1 = solve_equilibrium(
            SubsidizationGame(market, 1.0)
        ).state.welfare
        assert welfare_q1 > welfare_q0
