"""Unit tests for the vectorized root-finding primitives."""

import numpy as np
import pytest

from repro.exceptions import BracketError
from repro.solvers.batch_rootfind import (
    bracketed_root_batch,
    expand_bracket_batch,
    newton_polish_batch,
)


def _cubic_rows(roots):
    roots = np.asarray(roots, dtype=float)

    def func(x):
        return (x - roots) ** 3 + (x - roots)

    return func


class TestExpandBracketBatch:
    def test_brackets_every_row(self):
        roots = np.array([0.3, 2.7, 11.0])
        lo, hi, f_lo, f_hi = expand_bracket_batch(_cubic_rows(roots), 3)
        assert np.all(lo <= roots)
        assert np.all(hi >= roots)
        assert np.all(f_lo <= 0.0)
        assert np.all(f_hi >= 0.0)

    def test_boundary_root_collapses_bracket(self):
        func = lambda x: x + 1.0  # root below lo=0 → boundary
        lo, hi, f_lo, f_hi = expand_bracket_batch(func, 2)
        np.testing.assert_array_equal(lo, hi)

    def test_never_crossing_raises(self):
        with pytest.raises(BracketError):
            expand_bracket_batch(lambda x: np.full_like(x, -1.0), 2,
                                 max_expansions=12)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            expand_bracket_batch(lambda x: x, 1, growth=1.0)
        with pytest.raises(ValueError):
            expand_bracket_batch(lambda x: x, 1, initial_width=0.0)


class TestBracketedRootBatch:
    def test_finds_all_roots(self):
        roots = np.array([0.25, 1.5, 3.9, 7.2])
        func = _cubic_rows(roots)
        lo, hi, f_lo, f_hi = expand_bracket_batch(func, 4)
        found = bracketed_root_batch(func, lo, hi, f_lo, f_hi, xtol=1e-13)
        np.testing.assert_allclose(found, roots, atol=1e-12)

    def test_decreasing_rows_supported(self):
        roots = np.array([0.4, 2.0])

        def func(x):
            return roots - x  # strictly decreasing rows

        lo = np.zeros(2)
        hi = np.full(2, 4.0)
        found = bracketed_root_batch(func, lo, hi, func(lo), func(hi), xtol=1e-13)
        np.testing.assert_allclose(found, roots, atol=1e-12)

    def test_row_trajectories_are_batch_independent(self):
        roots = np.array([0.25, 1.5, 3.9])
        func = _cubic_rows(roots)
        lo, hi, f_lo, f_hi = expand_bracket_batch(func, 3)
        joint = bracketed_root_batch(func, lo, hi, f_lo, f_hi, xtol=1e-13)
        for i in range(3):
            solo_func = _cubic_rows(roots[i : i + 1])
            solo = bracketed_root_batch(
                func=solo_func,
                lo=lo[i : i + 1],
                hi=hi[i : i + 1],
                f_lo=f_lo[i : i + 1],
                f_hi=f_hi[i : i + 1],
                xtol=1e-13,
            )
            assert solo[0] == joint[i]  # bitwise

    def test_inactive_rows_pass_through(self):
        roots = np.array([1.0, 2.0])
        func = _cubic_rows(roots)
        lo = np.zeros(2)
        hi = np.full(2, 5.0)
        out = bracketed_root_batch(
            func, lo, hi, func(lo), func(hi),
            active=np.array([True, False]), xtol=1e-13,
        )
        np.testing.assert_allclose(out[0], 1.0, atol=1e-12)
        assert out[1] == 0.0

    def test_endpoint_root_detected(self):
        func = lambda x: x - 1.0
        lo = np.array([1.0])
        hi = np.array([3.0])
        out = bracketed_root_batch(func, lo, hi, func(lo), func(hi))
        assert out[0] == 1.0

    def test_missing_sign_change_raises(self):
        func = lambda x: x + 1.0
        lo = np.array([0.0])
        hi = np.array([2.0])
        with pytest.raises(BracketError):
            bracketed_root_batch(func, lo, hi, func(lo), func(hi))

    def test_composes_with_boundary_rooted_brackets(self):
        # expand_bracket_batch collapses boundary-rooted rows to lo == hi
        # with a positive value; the root solver must resolve those at lo
        # instead of rejecting the "bracket" for its missing sign change.
        def func(x):
            return np.stack([x[0] - 2.0, x[1] + 1.0])

        lo, hi, f_lo, f_hi = expand_bracket_batch(func, 2)
        roots = bracketed_root_batch(func, lo, hi, f_lo, f_hi, xtol=1e-13)
        np.testing.assert_allclose(roots, [2.0, 0.0], atol=1e-12)


class TestNewtonPolishBatch:
    def test_polishes_to_machine_precision(self):
        roots = np.array([0.2, 1.3, 6.5])

        def value_and_slope(x, rows):
            return np.tanh(x - roots[rows]), 1.0 / np.cosh(x - roots[rows]) ** 2

        start = roots + np.array([1e-3, -2e-3, 5e-4])
        x, converged = newton_polish_batch(value_and_slope, start)
        assert converged.all()
        np.testing.assert_allclose(x, roots, atol=1e-14)

    def test_boundary_clamp(self):
        # Root at -1 clamps to the lower bound 0 and reports convergence.
        def value_and_slope(x, rows):
            return x + 1.0, np.ones_like(x)

        x, converged = newton_polish_batch(value_and_slope, np.array([0.5]))
        assert x[0] == 0.0
        assert converged.all()

    def test_infinite_slope_is_not_convergence(self):
        # A zero step caused by an infinite slope says nothing about the
        # residual; the row must be reported unconverged so callers fall
        # back to bracketing instead of accepting a non-root.
        def value_and_slope(x, rows):
            return np.full_like(x, -0.5), np.where(x == 0.0, np.inf, 1.0)

        _, converged = newton_polish_batch(
            value_and_slope, np.array([0.0]), max_iter=5
        )
        assert not converged.any()

    def test_divergent_rows_flagged(self):
        # Slope of the wrong magnitude keeps the iterate bouncing; the row
        # must be reported unconverged rather than silently accepted.
        def value_and_slope(x, rows):
            return np.sign(x - 1.0) + (x - 1.0), np.full_like(x, 1e-8)

        _, converged = newton_polish_batch(
            value_and_slope, np.array([0.9]), max_iter=5
        )
        assert not converged.all()
