"""Unit tests for repro.solvers.vi."""

import numpy as np
import pytest

from repro.exceptions import ConvergenceError
from repro.solvers.vi import extragradient_box, natural_residual, projection_method_box


def strongly_monotone(x):
    """F(x) = A(x - x*) with A symmetric positive definite, x* = (1, -2)."""
    matrix = np.array([[2.0, 0.5], [0.5, 1.0]])
    return matrix @ (x - np.array([1.0, -2.0]))


def rotation(x):
    """A monotone but NOT strongly monotone operator (pure rotation)."""
    return np.array([x[1], -x[0]])


class TestNaturalResidual:
    def test_zero_at_interior_solution(self):
        x = np.array([1.0, 0.0])
        fx = np.zeros(2)
        assert natural_residual(fx, x, -10.0, 10.0) == 0.0

    def test_zero_at_boundary_solution(self):
        # At x = lo with F(x) > 0, the VI is satisfied.
        x = np.array([0.0])
        fx = np.array([5.0])
        assert natural_residual(fx, x, 0.0, 1.0) == 0.0

    def test_positive_off_solution(self):
        x = np.array([0.5])
        fx = np.array([1.0])
        assert natural_residual(fx, x, 0.0, 1.0) > 0.0


class TestProjectionMethod:
    def test_interior_solution(self):
        result = projection_method_box(
            strongly_monotone, np.zeros(2), -10.0, 10.0, tol=1e-11
        )
        assert result.converged
        np.testing.assert_allclose(result.x, [1.0, -2.0], atol=1e-9)

    def test_boundary_solution(self):
        # Unconstrained solution (1, -2) projected into [0, 10]^2 clamps x2.
        result = projection_method_box(
            strongly_monotone, np.ones(2), 0.0, 10.0, tol=1e-11
        )
        assert result.converged
        assert result.x[1] == pytest.approx(0.0, abs=1e-9)

    def test_raises_on_budget_exhaustion(self):
        with pytest.raises(ConvergenceError):
            projection_method_box(
                rotation, np.array([5.0, 5.0]), -10.0, 10.0,
                tol=1e-14, max_iter=50,
            )


class TestExtragradient:
    def test_interior_solution(self):
        result = extragradient_box(
            strongly_monotone, np.zeros(2), -10.0, 10.0, tol=1e-11
        )
        assert result.converged
        np.testing.assert_allclose(result.x, [1.0, -2.0], atol=1e-9)

    def test_handles_monotone_rotation(self):
        # Pure rotation defeats the basic projection method but extragradient
        # converges to the solution x* = 0 of VI(rotation, box).
        result = extragradient_box(
            rotation, np.array([3.0, 4.0]), -10.0, 10.0, tol=1e-9
        )
        assert result.converged
        np.testing.assert_allclose(result.x, [0.0, 0.0], atol=1e-7)

    def test_agrees_with_projection_method(self):
        a = projection_method_box(
            strongly_monotone, np.zeros(2), 0.0, 10.0, tol=1e-11
        )
        b = extragradient_box(
            strongly_monotone, np.zeros(2), 0.0, 10.0, tol=1e-11
        )
        np.testing.assert_allclose(a.x, b.x, atol=1e-8)

    def test_unconverged_result_returned_when_not_raising(self):
        result = extragradient_box(
            rotation, np.array([5.0, 5.0]), -10.0, 10.0,
            tol=1e-14, max_iter=10, raise_on_failure=False,
        )
        assert not result.converged
        assert result.iterations == 10
