"""Unit tests for repro.solvers.projection."""

import numpy as np
import pytest

from repro.solvers.projection import clip_scalar, project_box


class TestProjectBox:
    def test_interior_point_unchanged(self):
        x = np.array([0.5, 0.2])
        np.testing.assert_array_equal(project_box(x, 0.0, 1.0), x)

    def test_clips_both_sides(self):
        result = project_box(np.array([-1.0, 2.0]), 0.0, 1.0)
        np.testing.assert_array_equal(result, [0.0, 1.0])

    def test_broadcasts_vector_bounds(self):
        result = project_box(
            np.array([5.0, 5.0]), np.array([0.0, 6.0]), np.array([1.0, 10.0])
        )
        np.testing.assert_array_equal(result, [1.0, 6.0])

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            project_box(np.array([0.0]), 1.0, 0.0)

    def test_idempotent(self):
        x = np.array([-3.0, 0.4, 9.0])
        once = project_box(x, 0.0, 1.0)
        np.testing.assert_array_equal(project_box(once, 0.0, 1.0), once)


class TestClipScalar:
    def test_clips(self):
        assert clip_scalar(-1.0, 0.0, 2.0) == 0.0
        assert clip_scalar(3.0, 0.0, 2.0) == 2.0
        assert clip_scalar(1.0, 0.0, 2.0) == 1.0

    def test_rejects_inverted_interval(self):
        with pytest.raises(ValueError):
            clip_scalar(0.0, 2.0, 1.0)
