"""Unit tests for repro.solvers.differentiation."""

import math

import numpy as np
import pytest

from repro.solvers.differentiation import (
    derivative,
    gradient,
    jacobian,
    second_derivative,
)


class TestDerivative:
    def test_polynomial(self):
        assert derivative(lambda x: x**3, 2.0) == pytest.approx(12.0, rel=1e-7)

    def test_exponential(self):
        assert derivative(math.exp, 1.0) == pytest.approx(math.e, rel=1e-8)

    def test_at_zero_uses_absolute_step(self):
        assert derivative(math.sin, 0.0) == pytest.approx(1.0, rel=1e-8)

    def test_respects_custom_step(self):
        coarse = derivative(lambda x: x**2, 1.0, rel_step=1e-2)
        assert coarse == pytest.approx(2.0, rel=1e-3)


class TestSecondDerivative:
    def test_quadratic(self):
        assert second_derivative(lambda x: 3.0 * x**2, 5.0) == pytest.approx(
            6.0, rel=1e-5
        )

    def test_exponential(self):
        assert second_derivative(math.exp, 0.0) == pytest.approx(1.0, rel=1e-5)


class TestGradient:
    def test_quadratic_form(self):
        func = lambda x: x[0] ** 2 + 3.0 * x[0] * x[1]  # noqa: E731
        grad = gradient(func, np.array([1.0, 2.0]))
        np.testing.assert_allclose(grad, [8.0, 3.0], rtol=1e-7)


class TestJacobian:
    def test_linear_map_recovers_matrix(self):
        matrix = np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]])
        jac = jacobian(lambda x: matrix @ x, np.array([0.7, -0.3]))
        np.testing.assert_allclose(jac, matrix, atol=1e-8)

    def test_nonlinear_map(self):
        func = lambda x: np.array([x[0] * x[1], math.sin(x[0])])  # noqa: E731
        jac = jacobian(func, np.array([math.pi / 2, 2.0]))
        expected = np.array([[2.0, math.pi / 2], [0.0, 0.0]])
        np.testing.assert_allclose(jac, expected, atol=1e-7)

    def test_one_sided_at_lower_bound(self):
        # func only defined for x >= 0; probe must not go negative.
        def func(x):
            if np.any(x < 0.0):
                raise AssertionError("probed outside the domain")
            return np.array([x[0] ** 2 + x[1]])

        # Forward difference at the bound is O(h) accurate, hence the looser
        # tolerance on the x^2 coordinate.
        jac = jacobian(func, np.array([0.0, 1.0]), lo=0.0)
        np.testing.assert_allclose(jac, [[0.0, 1.0]], atol=2e-5)

    def test_one_sided_at_upper_bound(self):
        def func(x):
            if np.any(x > 1.0):
                raise AssertionError("probed outside the domain")
            return np.array([3.0 * x[0]])

        jac = jacobian(func, np.array([1.0]), hi=1.0)
        np.testing.assert_allclose(jac, [[3.0]], rtol=1e-6)

    def test_degenerate_box_yields_zero_column(self):
        jac = jacobian(
            lambda x: np.array([x[0] + x[1]]),
            np.array([0.5, 0.0]),
            lo=np.array([0.0, 0.0]),
            hi=np.array([1.0, 0.0]),
        )
        assert jac[0, 1] == 0.0
        assert jac[0, 0] == pytest.approx(1.0, rel=1e-6)
