"""Unit tests for repro.solvers.fixed_point."""

import numpy as np
import pytest

from repro.exceptions import ConvergenceError
from repro.solvers.fixed_point import anderson_fixed_point, damped_fixed_point


def contraction(x):
    """An affine contraction with fixed point (2, -1)."""
    matrix = np.array([[0.3, 0.1], [-0.2, 0.4]])
    target = np.array([2.0, -1.0])
    return target + matrix @ (x - target)


class TestDampedFixedPoint:
    def test_converges_on_contraction(self):
        result = damped_fixed_point(contraction, np.zeros(2), tol=1e-12)
        assert result.converged
        np.testing.assert_allclose(result.x, [2.0, -1.0], atol=1e-10)

    def test_damping_stabilizes_oscillating_map(self):
        # x -> -x + 1 has fixed point 0.5 but undamped iteration cycles.
        mapping = lambda x: -x + 1.0  # noqa: E731
        with pytest.raises(ConvergenceError):
            damped_fixed_point(mapping, np.array([0.0]), max_iter=100)
        result = damped_fixed_point(
            mapping, np.array([0.0]), damping=0.5, tol=1e-12
        )
        assert result.x[0] == pytest.approx(0.5, abs=1e-10)

    def test_reports_failure_without_raising_when_asked(self):
        result = damped_fixed_point(
            lambda x: x + 1.0,
            np.zeros(1),
            max_iter=10,
            raise_on_failure=False,
        )
        assert not result.converged
        assert result.iterations == 10
        assert result.residual == pytest.approx(1.0)

    def test_rejects_bad_damping(self):
        with pytest.raises(ValueError):
            damped_fixed_point(contraction, np.zeros(2), damping=0.0)
        with pytest.raises(ValueError):
            damped_fixed_point(contraction, np.zeros(2), damping=1.5)

    def test_does_not_mutate_initial_guess(self):
        x0 = np.array([5.0, 5.0])
        damped_fixed_point(contraction, x0, tol=1e-10)
        np.testing.assert_array_equal(x0, [5.0, 5.0])

    def test_immediate_convergence_at_fixed_point(self):
        result = damped_fixed_point(contraction, np.array([2.0, -1.0]))
        assert result.iterations == 1


class TestAndersonFixedPoint:
    def test_matches_picard_solution(self):
        picard = damped_fixed_point(contraction, np.zeros(2), tol=1e-12)
        anderson = anderson_fixed_point(contraction, np.zeros(2), tol=1e-12)
        np.testing.assert_allclose(anderson.x, picard.x, atol=1e-9)

    def test_accelerates_slow_linear_map(self):
        # Contraction factor 0.99: Picard needs thousands of iterations.
        slow = lambda x: 0.99 * x + 0.01  # noqa: E731
        anderson = anderson_fixed_point(slow, np.zeros(3), tol=1e-12)
        picard = damped_fixed_point(slow, np.zeros(3), tol=1e-12, max_iter=10_000)
        assert anderson.converged
        np.testing.assert_allclose(anderson.x, 1.0, atol=1e-8)
        assert anderson.iterations < picard.iterations / 10

    def test_rejects_bad_memory(self):
        with pytest.raises(ValueError):
            anderson_fixed_point(contraction, np.zeros(2), memory=0)

    def test_solves_divergent_affine_map_by_extrapolation(self):
        # Picard diverges on x -> 2x + 1 (spectral radius 2), but Anderson's
        # least-squares extrapolation solves affine maps exactly: x* = -1.
        result = anderson_fixed_point(
            lambda x: 2.0 * x + 1.0, np.ones(2), tol=1e-10
        )
        np.testing.assert_allclose(result.x, -1.0, atol=1e-8)

    def test_raises_when_no_fixed_point_exists(self):
        with pytest.raises(ConvergenceError):
            anderson_fixed_point(lambda x: x + 1.0, np.ones(2), max_iter=50)
