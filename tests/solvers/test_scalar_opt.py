"""Unit tests for repro.solvers.scalar_opt."""

import math

import pytest

from repro.solvers.scalar_opt import (
    golden_section_maximize,
    grid_polish_maximize,
    maximize_on_interval,
)


class TestGoldenSection:
    def test_concave_quadratic(self):
        result = golden_section_maximize(lambda x: -(x - 0.7) ** 2, 0.0, 2.0)
        assert result.x == pytest.approx(0.7, abs=1e-9)
        assert result.value == pytest.approx(0.0, abs=1e-15)

    def test_maximum_at_left_boundary(self):
        result = golden_section_maximize(lambda x: -x, 0.0, 1.0)
        assert result.x == 0.0

    def test_maximum_at_right_boundary(self):
        result = golden_section_maximize(lambda x: x, 0.0, 1.0)
        assert result.x == 1.0

    def test_degenerate_interval(self):
        result = golden_section_maximize(lambda x: x**2, 3.0, 3.0)
        assert result.x == 3.0
        assert result.value == 9.0

    def test_rejects_inverted_interval(self):
        with pytest.raises(ValueError):
            golden_section_maximize(lambda x: x, 1.0, 0.0)

    def test_revenue_style_objective(self):
        # p * e^{-p}: the canonical single-peaked revenue shape, max at 1.
        result = golden_section_maximize(lambda p: p * math.exp(-p), 0.0, 5.0)
        assert result.x == pytest.approx(1.0, abs=1e-8)


class TestGridPolish:
    def test_finds_global_peak_among_local_ones(self):
        # Two peaks: x = 0.2 (value ~1) and x = 0.8 (value ~1.5).
        def bimodal(x):
            return math.exp(-200 * (x - 0.2) ** 2) + 1.5 * math.exp(
                -200 * (x - 0.8) ** 2
            )

        result = grid_polish_maximize(bimodal, 0.0, 1.0, grid_points=64)
        assert result.x == pytest.approx(0.8, abs=1e-6)

    def test_rejects_too_few_grid_points(self):
        with pytest.raises(ValueError):
            grid_polish_maximize(lambda x: x, 0.0, 1.0, grid_points=2)

    def test_matches_golden_section_on_unimodal(self):
        func = lambda x: -(x - 1.3) ** 2  # noqa: E731
        golden = golden_section_maximize(func, 0.0, 3.0)
        grid = grid_polish_maximize(func, 0.0, 3.0)
        assert grid.x == pytest.approx(golden.x, abs=1e-7)


class TestDispatch:
    def test_unimodal_path(self):
        result = maximize_on_interval(lambda x: -(x**2), -1.0, 1.0)
        assert result.x == pytest.approx(0.0, abs=1e-9)

    def test_multimodal_path(self):
        def nasty(x):
            return math.sin(5.0 * x) + 0.5 * x

        grid = maximize_on_interval(nasty, 0.0, 3.0, unimodal=False)
        brute = max(nasty(0.001 * k) for k in range(3001))
        # The polished optimum must match or beat a fine brute-force grid.
        assert grid.value >= brute - 1e-9
