"""Batch-vs-scalar rootfind parity across model families and edge cases.

Two layers of the same guarantee:

* **Model level** — for every demand family × throughput family the library
  ships, the batched congestion/marginal path must agree with the scalar
  path row by row, under the default numpy backend and under the kernel
  backends (where the exponential family takes the fused route and every
  other family falls back to lockstep with backend-bound ops).
* **Solver level** — the batch rootfind primitives must agree with their
  scalar counterparts on the awkward inputs: boundary roots at ``lo``,
  exact endpoint zeros, and degenerate/non-finite Newton slopes.
"""

import numpy as np
import pytest

from repro.backend import available_backends, use_backend
from repro.core.game import SubsidizationGame
from repro.network.demand import (
    ExponentialDemand,
    LinearDemand,
    LogitDemand,
    ScaledDemand,
    ShiftedPowerDemand,
)
from repro.network.throughput import (
    ExponentialThroughput,
    PowerLawThroughput,
    RationalThroughput,
)
from repro.providers.content_provider import ContentProvider
from repro.providers.isp import AccessISP
from repro.providers.market import Market
from repro.solvers.batch_rootfind import (
    bracketed_root_batch,
    expand_bracket_batch,
    newton_polish_batch,
)
from repro.solvers.rootfind import solve_increasing


def _backends() -> list[str]:
    names = ["numpy", "pyloops"]
    if available_backends()["cext"] == "resolves to cext":
        names.append("cext")
    return names


BACKENDS = _backends()

# One representative per demand family; the three CPs of a market get the
# same family at slightly different strengths.
DEMANDS = {
    "exponential": lambda k: ExponentialDemand(alpha=0.8 + 0.4 * k, scale=0.9),
    "scaled-exponential": lambda k: ScaledDemand(
        ExponentialDemand(alpha=0.8 + 0.4 * k, scale=0.9), weight=0.7
    ),
    "logit": lambda k: LogitDemand(alpha=1.5 + 0.5 * k, midpoint=0.8, scale=1.2),
    "linear": lambda k: LinearDemand(base=1.5 + 0.2 * k, slope=0.9),
    "shifted-power": lambda k: ShiftedPowerDemand(alpha=1.2 + 0.4 * k, scale=1.1),
}

THROUGHPUTS = {
    "exponential": lambda k: ExponentialThroughput(beta=0.9 + 0.5 * k, peak=1.1),
    "power-law": lambda k: PowerLawThroughput(beta=1.1 + 0.5 * k, peak=0.9),
    "rational": lambda k: RationalThroughput(beta=1.4 + 0.6 * k, peak=1.2),
}

VALUES = (1.0, 0.6, 1.4)


def family_market(demand_key: str, throughput_key: str) -> Market:
    providers = [
        ContentProvider(
            demand=DEMANDS[demand_key](k),
            throughput=THROUGHPUTS[throughput_key](k),
            value=VALUES[k],
            name=f"{demand_key}/{throughput_key}/{k}",
        )
        for k in range(3)
    ]
    return Market(providers, AccessISP(price=1.0, capacity=0.8))


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("throughput_key", sorted(THROUGHPUTS))
@pytest.mark.parametrize("demand_key", sorted(DEMANDS))
class TestModelLevelParity:
    def test_batch_rows_match_scalar_solves(
        self, demand_key, throughput_key, backend
    ):
        market = family_market(demand_key, throughput_key)
        rng = np.random.default_rng(17)
        profiles = rng.uniform(0.0, 0.9, size=(4, market.size))
        with use_backend(backend):
            batch = market.solve_batch(profiles)
            for b in range(profiles.shape[0]):
                state = market.solve(profiles[b])
                np.testing.assert_allclose(
                    batch.utilizations[b], state.utilization,
                    rtol=1e-9, atol=1e-9,
                )
                np.testing.assert_allclose(
                    batch.populations[b], state.populations, rtol=1e-9
                )
                np.testing.assert_allclose(
                    batch.throughputs[b], state.throughputs,
                    rtol=1e-9, atol=1e-12,
                )
                np.testing.assert_allclose(
                    batch.utilities[b], state.utilities,
                    rtol=1e-9, atol=1e-12,
                )

    def test_batch_marginals_match_scalar_marginals(
        self, demand_key, throughput_key, backend
    ):
        market = family_market(demand_key, throughput_key)
        game = SubsidizationGame(market, cap=0.9)
        rng = np.random.default_rng(23)
        profiles = rng.uniform(0.0, 0.9, size=(4, market.size))
        with use_backend(backend):
            batch = game.marginal_utilities_batch(profiles)
            for b in range(profiles.shape[0]):
                scalar = game.marginal_utilities(profiles[b])
                np.testing.assert_allclose(
                    batch[b], scalar, rtol=1e-8, atol=1e-10
                )


@pytest.mark.parametrize("backend", BACKENDS)
class TestSolverLevelEdgeCases:
    def test_boundary_roots_at_lo_match_scalar(self, backend):
        # f_i(lo) >= 0: the root is the boundary itself, batch and scalar.
        offsets = np.array([0.0, 0.3, 1.7])

        def batch_f(x):
            return x + offsets

        with use_backend(backend):
            lo, hi, f_lo, f_hi = expand_bracket_batch(batch_f, 3, lo=0.0)
            roots = bracketed_root_batch(batch_f, lo, hi, f_lo, f_hi)
        assert np.array_equal(roots, np.zeros(3))
        for c in offsets:
            assert solve_increasing(lambda x: x + c, lo=0.0) == 0.0

    def test_exact_endpoint_zero_resolves_to_the_endpoint(self, backend):
        # f(hi) == 0.0 exactly: the root is hi, no Illinois iterations.
        roots_at = np.array([0.5, 1.25, 2.0])

        def batch_f(x):
            return x - roots_at

        lo = np.zeros(3)
        hi = roots_at.copy()
        with use_backend(backend):
            f_lo = batch_f(lo)
            f_hi = batch_f(hi)
            batch = bracketed_root_batch(batch_f, lo, hi, f_lo, f_hi)
        assert np.array_equal(batch, roots_at)
        for c in roots_at:
            scalar = solve_increasing(
                lambda x: x - c, lo=0.0, initial_width=float(c)
            )
            assert scalar == c

    def test_mixed_family_batch_matches_scalar_rootfind(self, backend):
        # Rows of genuinely different shapes solved jointly agree with
        # one-at-a-time scalar solves to root tolerance.
        rows = [
            lambda x: x - 0.7,
            lambda x: np.expm1(x) - 1.3,
            lambda x: x**3 + 0.5 * x - 2.0,
            lambda x: np.log1p(x) - 0.4,
        ]

        def batch_f(x):
            return np.array([rows[i](x[i]) for i in range(len(rows))])

        with use_backend(backend):
            lo, hi, f_lo, f_hi = expand_bracket_batch(batch_f, len(rows))
            batch = bracketed_root_batch(
                batch_f, lo, hi, f_lo, f_hi, xtol=1e-12
            )
        for i, f in enumerate(rows):
            scalar = solve_increasing(f, xtol=1e-12)
            assert abs(batch[i] - scalar) < 1e-9

    def test_single_row_batches_reproduce_the_joint_batch_bitwise(
        self, backend
    ):
        # Row independence: the joint solve and three one-row solves are
        # the same trajectories, hence bitwise-equal roots.
        shifts = np.array([0.3, 1.1, 2.6])

        def joint(x):
            return np.expm1(x) - shifts

        with use_backend(backend):
            lo, hi, f_lo, f_hi = expand_bracket_batch(joint, 3)
            together = bracketed_root_batch(joint, lo, hi, f_lo, f_hi)
            alone = np.empty(3)
            for i in range(3):
                def one(x, i=i):
                    return np.expm1(x) - shifts[i : i + 1]

                lo1, hi1, fl1, fh1 = expand_bracket_batch(one, 1)
                alone[i] = bracketed_root_batch(one, lo1, hi1, fl1, fh1)[0]
        assert np.array_equal(together, alone)

    def test_degenerate_slopes_stay_unconverged(self, backend):
        # Zero, infinite and NaN slopes carry no Newton information: those
        # rows must keep their iterate and report non-convergence, exactly
        # as when solved alone.
        slopes = np.array([1.0, 0.0, np.inf, np.nan])
        x0 = np.array([1.5, 1.5, 1.5, 1.5])

        def value_and_slope(x_active, rows):
            return x_active - 1.0, slopes[rows]

        with use_backend(backend):
            joint_x, joint_ok = newton_polish_batch(
                value_and_slope, x0, max_iter=8
            )
            alone_x = np.empty(4)
            alone_ok = np.empty(4, dtype=bool)
            for i in range(4):
                def one(x_active, rows, i=i):
                    return x_active - 1.0, np.array([slopes[i]])

                xi, oki = newton_polish_batch(
                    one, x0[i : i + 1], max_iter=8
                )
                alone_x[i] = xi[0]
                alone_ok[i] = oki[0]
        assert joint_ok.tolist() == [True, False, False, False]
        assert joint_x[0] == 1.0
        assert np.array_equal(joint_x[1:], x0[1:])  # untouched iterates
        assert np.array_equal(joint_x, alone_x)
        assert np.array_equal(joint_ok, alone_ok)

    def test_all_unbracketed_rows_reported_together(self, backend):
        # Satellite contract: a mass failure names every failing row and
        # its last interval, not just the first one found.
        from repro.exceptions import BracketError

        def batch_f(x):
            # Rows 0 and 2 never cross zero; row 1 is fine.
            return np.array([-1.0, x[1] - 0.5, -2.0])

        with use_backend(backend):
            with pytest.raises(BracketError) as err:
                expand_bracket_batch(batch_f, 3, max_expansions=12)
        message = str(err.value)
        assert getattr(err.value, "rows", None) == [0, 2]
        assert len(err.value.intervals) == 2
        assert "rows" in message or "0" in message
