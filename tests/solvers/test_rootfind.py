"""Unit tests for repro.solvers.rootfind."""

import math

import pytest

from repro.exceptions import BracketError
from repro.solvers.rootfind import (
    bisect_increasing,
    bracket_increasing,
    solve_increasing,
)


class TestBracketIncreasing:
    def test_brackets_simple_linear_root(self):
        bracket = bracket_increasing(lambda x: x - 3.0)
        assert bracket.f_lo <= 0.0 <= bracket.f_hi
        assert bracket.lo <= 3.0 <= bracket.hi

    def test_root_at_left_boundary_returns_degenerate_bracket(self):
        bracket = bracket_increasing(lambda x: x + 1.0, lo=0.0)
        assert bracket.lo == bracket.hi == 0.0

    def test_expands_geometrically_to_reach_distant_roots(self):
        bracket = bracket_increasing(lambda x: x - 1e6, initial_width=1.0)
        assert bracket.hi >= 1e6
        assert bracket.contains_root()

    def test_raises_when_function_never_crosses_zero(self):
        with pytest.raises(BracketError):
            bracket_increasing(lambda x: -1.0, max_expansions=20)

    def test_rejects_invalid_growth(self):
        with pytest.raises(ValueError):
            bracket_increasing(lambda x: x, growth=1.0)

    def test_rejects_non_positive_width(self):
        with pytest.raises(ValueError):
            bracket_increasing(lambda x: x, initial_width=0.0)


class TestBisectIncreasing:
    def test_finds_linear_root(self):
        root = bisect_increasing(lambda x: x - 2.0, 0.0, 10.0, xtol=1e-12)
        assert root == pytest.approx(2.0, abs=1e-10)

    def test_finds_transcendental_root(self):
        # x = e^{-x} has the Omega constant as its root.
        root = bisect_increasing(lambda x: x - math.exp(-x), 0.0, 1.0, xtol=1e-12)
        assert root == pytest.approx(0.5671432904097838, abs=1e-9)

    def test_returns_lo_when_already_non_negative(self):
        assert bisect_increasing(lambda x: x + 5.0, 0.0, 1.0) == 0.0

    def test_raises_without_sign_change(self):
        with pytest.raises(BracketError):
            bisect_increasing(lambda x: x - 100.0, 0.0, 1.0)

    def test_rejects_inverted_interval(self):
        with pytest.raises(ValueError):
            bisect_increasing(lambda x: x, 1.0, 0.0)


class TestSolveIncreasing:
    def test_agrees_with_bisection(self):
        func = lambda x: x**3 - 7.0  # noqa: E731
        brent = solve_increasing(func)
        bisect = bisect_increasing(func, 0.0, 10.0, xtol=1e-13)
        assert brent == pytest.approx(bisect, abs=1e-9)
        assert brent == pytest.approx(7.0 ** (1.0 / 3.0), abs=1e-10)

    def test_root_exactly_at_zero(self):
        assert solve_increasing(lambda x: x) == 0.0

    def test_congestion_style_fixed_point(self):
        # g(phi) = phi - e^{-3 phi}: the utilization equation of a unit
        # system with one class; root satisfies phi = e^{-3 phi}.
        phi = solve_increasing(lambda x: x - math.exp(-3.0 * x))
        assert phi == pytest.approx(math.exp(-3.0 * phi), abs=1e-10)

    def test_steep_function(self):
        root = solve_increasing(lambda x: math.expm1(50.0 * (x - 0.3)))
        assert root == pytest.approx(0.3, abs=1e-9)

    def test_tiny_root_with_large_initial_width(self):
        root = solve_increasing(lambda x: x - 1e-9, initial_width=100.0)
        assert root == pytest.approx(1e-9, abs=1e-12)
