"""Backend resolution, fallback recording, and the selection surface."""

import math
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.backend import (
    BACKEND_NAMES,
    available_backends,
    get_backend,
    numba_available,
    ops,
    set_backend,
    use_backend,
    warm_kernels,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestResolution:
    def test_backend_names_are_the_selection_surface(self):
        assert set(available_backends()) == set(BACKEND_NAMES)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            set_backend("cupy")

    def test_unknown_backend_leaves_active_backend_untouched(self):
        before = get_backend()
        with pytest.raises(ValueError):
            set_backend("not-a-backend")
        assert get_backend() is before

    def test_numpy_backend_is_the_lockstep_reference(self):
        with use_backend("numpy") as backend:
            assert backend.name == "numpy"
            assert backend.requested == "numpy"
            assert backend.kernels is None
            assert backend.cache_tag == ""
            assert not backend.compiled
            assert backend.fallback_reason is None

    def test_pyloops_is_always_available(self):
        with use_backend("pyloops") as backend:
            assert backend.name == "pyloops"
            assert backend.compiled
            assert backend.cache_tag != ""
            assert backend.fallback_reason is None

    def test_numba_resolves_or_records_fallback(self):
        with use_backend("numba") as backend:
            if numba_available():
                assert backend.name == "numba"
                assert backend.compiled
            else:
                assert backend.name == "numpy"
                assert backend.kernels is None
                assert "numba" in backend.fallback_reason

    def test_compiled_alias_always_resolves_to_a_real_backend(self):
        with use_backend("compiled") as backend:
            assert backend.requested == "compiled"
            assert backend.name in ("numba", "cext", "numpy")
            assert backend.name != "compiled"

    def test_kernel_backends_share_one_cache_tag(self):
        tags = set()
        for name in ("numba", "cext", "pyloops", "compiled"):
            with use_backend(name) as backend:
                if backend.compiled:
                    tags.add(backend.cache_tag)
        assert len(tags) == 1  # pyloops guarantees at least one entry

    def test_available_backends_reports_status_strings(self):
        status = available_backends()
        assert status["numpy"] == "resolves to numpy"
        assert status["pyloops"] == "resolves to pyloops"
        for name, line in status.items():
            assert line.startswith(("resolves to", "falls back to numpy"))


class TestSelection:
    def test_use_backend_restores_the_previous_selection(self):
        before = get_backend().requested
        with use_backend("pyloops"):
            assert get_backend().name == "pyloops"
            with use_backend("numpy"):
                assert get_backend().name == "numpy"
            assert get_backend().name == "pyloops"
        assert get_backend().requested == before

    def test_use_backend_restores_after_an_exception(self):
        before = get_backend().requested
        with pytest.raises(RuntimeError):
            with use_backend("pyloops"):
                raise RuntimeError("boom")
        assert get_backend().requested == before

    def test_env_var_selects_backend_on_first_use(self):
        script = (
            "from repro.backend import get_backend; "
            "b = get_backend(); print(b.requested, b.name)"
        )
        env = {
            **os.environ,
            "REPRO_BACKEND": "pyloops",
            "PYTHONPATH": str(REPO_ROOT / "src"),
        }
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.split() == ["pyloops", "pyloops"]


class TestOpsRebinding:
    def test_numpy_backend_binds_numpy_exp(self):
        x = np.array([-1.5, 0.0, 0.25, 3.0])
        with use_backend("numpy"):
            assert np.array_equal(ops.exp(x), np.exp(x))

    def test_kernel_backend_binds_libm_exp(self):
        x = np.array([-1.5, 0.0, 0.25, 3.0])
        with use_backend("pyloops"):
            got = ops.exp(x)
        expected = np.array([math.exp(v) for v in x])
        assert np.array_equal(got, expected)

    def test_kernel_backend_pair_dot_accumulates_sequentially(self):
        rng = np.random.default_rng(3)
        a = rng.normal(size=(5, 7))
        b = rng.normal(size=(5, 7))
        with use_backend("pyloops"):
            got = ops.pair_dot(a, b)
        expected = np.zeros(5)
        for i in range(5):
            acc = 0.0
            for j in range(7):
                acc += a[i, j] * b[i, j]
            expected[i] = acc
        assert np.array_equal(got, expected)

    def test_ops_rebind_back_to_numpy_after_context(self):
        x = np.array([0.1, 0.7])
        with use_backend("numpy"):
            with use_backend("pyloops"):
                pass
            assert np.array_equal(ops.exp(x), np.exp(x))


class TestWarmKernels:
    def test_noop_on_numpy(self):
        with use_backend("numpy"):
            warm_kernels()  # must not raise

    def test_exercises_every_kernel_on_pyloops(self):
        with use_backend("pyloops"):
            warm_kernels()  # must not raise
