"""Golden tests: fused kernels are bitwise-identical to lockstep, per backend.

The contract the compiled layer is held to (fastmath off, identical
operation order): under any one kernel backend, the fused per-row kernels
and the lockstep NumPy path — evaluated with the same backend-bound ops —
produce *bitwise equal* results for the congestion solve (K1), the batched
marginal-utility chain (K2) and the vectorized best-response sweep (K3),
cold and warm-started alike. Cross-backend (numpy vs libm exp) is a
separate, tolerance-level contract checked at the end.

``pyloops`` always runs; ``cext``/``numba`` join the matrix when their
toolchain is present.
"""

import contextlib

import numpy as np
import pytest

from repro.backend import available_backends, use_backend
from repro.core.best_response import best_response_profile_vectorized
from repro.core.game import BatchedProfileEvaluator, SubsidizationGame
from repro.exceptions import ModelError
from repro.network.demand import ExponentialDemand, ScaledDemand
from repro.network.throughput import ExponentialThroughput
from repro.providers.content_provider import ContentProvider, exponential_cp
from repro.providers.isp import AccessISP
from repro.providers.market import Market


def _kernel_backends() -> list[str]:
    names = ["pyloops"]
    status = available_backends()
    for name in ("cext", "numba"):
        if status[name] == f"resolves to {name}":
            names.append(name)
    return names


KERNEL_BACKENDS = _kernel_backends()


@contextlib.contextmanager
def lockstep(market):
    """Force the lockstep arm while keeping the backend's ops bound."""
    market._kernel_plan = None
    try:
        yield
    finally:
        market._kernel_plan = False


def make_market() -> Market:
    providers = [
        exponential_cp(1.0, 1.0, value=1.2),
        exponential_cp(0.5, 2.0, value=0.8, demand_scale=0.7, peak_rate=1.3),
        exponential_cp(2.0, 0.5, value=1.6),
        ContentProvider(
            demand=ScaledDemand(
                ExponentialDemand(alpha=1.5, scale=0.9), weight=0.6
            ),
            throughput=ExponentialThroughput(beta=1.2, peak=0.8),
            value=1.0,
            name="scaled",
        ),
    ]
    return Market(providers, AccessISP(price=1.0, capacity=0.75))


def make_profiles(market: Market, batch: int = 6) -> np.ndarray:
    rng = np.random.default_rng(11)
    return rng.uniform(0.0, 1.0, size=(batch, market.size))


STATE_FIELDS = ("utilizations", "populations", "throughputs", "utilities")


@pytest.mark.parametrize("name", KERNEL_BACKENDS)
class TestGoldenParity:
    def test_market_is_kernel_eligible(self, name):
        market = make_market()
        with use_backend(name):
            assert market.kernel_plan() is not None

    def test_congestion_batch_bitwise(self, name):
        market = make_market()
        profiles = make_profiles(market)
        with use_backend(name):
            fused = market.solve_batch(profiles)
            with lockstep(market):
                lock = market.solve_batch(profiles)
            for field in STATE_FIELDS:
                assert np.array_equal(
                    getattr(fused, field), getattr(lock, field)
                ), field

    def test_congestion_batch_bitwise_warm_started(self, name):
        market = make_market()
        profiles = make_profiles(market)
        with use_backend(name):
            phi0 = market.solve_batch(profiles).utilizations
            shifted = np.clip(profiles + 0.05, 0.0, None)
            fused = market.solve_batch(shifted, phi0=phi0)
            with lockstep(market):
                lock = market.solve_batch(shifted, phi0=phi0)
            assert np.array_equal(fused.utilizations, lock.utilizations)

    def test_marginals_batch_bitwise(self, name):
        market = make_market()
        profiles = make_profiles(market)
        game = SubsidizationGame(market, cap=1.0)
        with use_backend(name):
            fused = game.marginal_utilities_batch(profiles)
            # Diagnostics are the permanent lockstep arm — no plan involved.
            lock = game.marginal_diagnostics_batch(profiles).marginal_utilities
            assert np.array_equal(fused, lock)

    def test_marginals_batch_bitwise_warm_started(self, name):
        market = make_market()
        profiles = make_profiles(market)
        game = SubsidizationGame(market, cap=1.0)
        with use_backend(name):
            phi0 = market.solve_batch(profiles).utilizations
            fused = game.marginal_utilities_batch(profiles, phi0=phi0)
            lock = game.marginal_diagnostics_batch(
                profiles, phi0=phi0
            ).marginal_utilities
            assert np.array_equal(fused, lock)

    def test_scalar_marginals_are_a_batch_of_one(self, name):
        market = make_market()
        profiles = make_profiles(market)
        game = SubsidizationGame(market, cap=1.0)
        s = profiles[0]
        with use_backend(name):
            scalar = game.marginal_utilities(s)
            batched = game.marginal_utilities_batch(s[None, :])
            assert np.array_equal(scalar, batched[0])

    def test_best_response_bitwise(self, name):
        market = make_market()
        profiles = make_profiles(market)
        game = SubsidizationGame(market, cap=0.9)
        s = profiles[0]
        with use_backend(name):
            fused = best_response_profile_vectorized(game, s)
            with lockstep(market):
                lock = best_response_profile_vectorized(game, s)
            assert np.array_equal(fused, lock)

    def test_best_response_chain_bitwise(self, name):
        market = make_market()
        profiles = make_profiles(market)
        game = SubsidizationGame(market, cap=0.9)
        s = profiles[0]
        with use_backend(name):
            fused_ev = BatchedProfileEvaluator(game)
            f1 = best_response_profile_vectorized(game, s, evaluator=fused_ev)
            f2 = best_response_profile_vectorized(game, f1, evaluator=fused_ev)
            with lockstep(market):
                lock_ev = BatchedProfileEvaluator(game)
                l1 = best_response_profile_vectorized(
                    game, s, evaluator=lock_ev
                )
                l2 = best_response_profile_vectorized(
                    game, l1, evaluator=lock_ev
                )
            assert np.array_equal(f1, l1)
            assert np.array_equal(f2, l2)

    def test_invalid_subsidies_raise_the_lockstep_message(self, name):
        market = make_market()
        profiles = make_profiles(market)
        game = SubsidizationGame(market, cap=1.0)
        bad = profiles.copy()
        bad[0, 0] = -0.5
        with use_backend(name):
            with pytest.raises(ModelError) as fused_err:
                game.marginal_utilities_batch(bad)
            with lockstep(market):
                with pytest.raises(ModelError) as lock_err:
                    game.marginal_utilities_batch(bad)
            assert str(fused_err.value) == str(lock_err.value)

    def test_misshapen_warm_start_is_rejected_before_the_kernel(self, name):
        market = make_market()
        profiles = make_profiles(market)
        game = SubsidizationGame(market, cap=1.0)
        with use_backend(name):
            with pytest.raises(ValueError, match="phi0 must have shape"):
                game.marginal_utilities_batch(
                    profiles, phi0=np.zeros(profiles.shape[0] + 2)
                )


@pytest.mark.parametrize("name", KERNEL_BACKENDS)
def test_kernel_backend_tracks_numpy_reference_to_tolerance(name):
    """Cross-backend contract: libm vs vectorized exp differ in final ulps.

    Not bitwise (that is the per-backend guarantee above), but far inside
    solver tolerance — which is what makes all kernel backends share one
    solve-cache tag distinct from numpy's.
    """
    market = make_market()
    profiles = make_profiles(market)
    game = SubsidizationGame(market, cap=1.0)
    with use_backend("numpy"):
        reference = game.marginal_utilities_batch(profiles)
    with use_backend(name):
        compiled = game.marginal_utilities_batch(profiles)
    np.testing.assert_allclose(compiled, reference, rtol=1e-9, atol=1e-12)
