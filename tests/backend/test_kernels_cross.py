"""Cross-implementation check: pyloops and cext kernels agree bitwise.

The Python loop kernels (``kernels_py`` undecorated) and the generated C
kernels are meant to be the *same arithmetic* — libm ``exp``, sequential
accumulation, identical branch structure. That claim is what justifies all
kernel backends sharing one solve-cache tag, so it gets its own test:
every fused entry point must produce byte-identical results under both
implementations. Skipped wholesale when no C compiler is available.
"""

import numpy as np
import pytest

from repro.backend import available_backends, use_backend
from repro.backend.dispatch import fused_congestion
from repro.core.best_response import best_response_profile_vectorized
from repro.core.game import SubsidizationGame

from tests.backend.test_golden_parity import make_market, make_profiles

pytestmark = pytest.mark.skipif(
    available_backends()["cext"] != "resolves to cext",
    reason="C kernel extension unavailable (no compiler)",
)


def _both(fn):
    results = []
    for name in ("pyloops", "cext"):
        with use_backend(name) as backend:
            results.append(fn(backend))
    return results


def test_fused_congestion_bitwise_across_implementations():
    rng = np.random.default_rng(5)
    populations = rng.uniform(0.0, 2.0, size=(8, 3))
    betas = np.array([0.8, 1.5, 2.2])
    peaks = np.array([1.0, 0.7, 1.4])

    def solve(backend):
        return fused_congestion(
            backend, populations, betas, peaks, 0.9, 1e-10, None
        )

    phi_py, phi_c = _both(solve)
    assert np.array_equal(phi_py, phi_c)


def test_market_solve_batch_bitwise_across_implementations():
    market = make_market()
    profiles = make_profiles(market)

    def solve(_backend):
        return market.solve_batch(profiles)

    states_py, states_c = _both(solve)
    for field in ("utilizations", "populations", "throughputs", "utilities"):
        assert np.array_equal(
            getattr(states_py, field), getattr(states_c, field)
        ), field


def test_marginals_bitwise_across_implementations():
    market = make_market()
    profiles = make_profiles(market)
    game = SubsidizationGame(market, cap=1.0)

    u_py, u_c = _both(lambda _b: game.marginal_utilities_batch(profiles))
    assert np.array_equal(u_py, u_c)


def test_best_response_bitwise_across_implementations():
    market = make_market()
    profiles = make_profiles(market)
    game = SubsidizationGame(market, cap=0.9)
    s = profiles[0]

    r_py, r_c = _both(lambda _b: best_response_profile_vectorized(game, s))
    assert np.array_equal(r_py, r_c)
