"""Unit tests for repro.io — market and scenario serialization."""

import json

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.io import (
    _FAMILIES,
    load_market,
    load_scenario,
    market_from_dict,
    market_to_dict,
    save_market,
    save_scenario,
    scenario_from_dict,
    scenario_to_dict,
)
from repro.network.demand import (
    DemandFunction,
    ExponentialDemand,
    LinearDemand,
    LogitDemand,
    ScaledDemand,
    ShiftedPowerDemand,
)
from repro.network.throughput import (
    ExponentialThroughput,
    PowerLawThroughput,
    RationalThroughput,
    ThroughputFunction,
)
from repro.network.utilization import (
    LinearUtilization,
    MM1Utilization,
    PowerLawUtilization,
    UtilizationFunction,
)
from repro.providers import AccessISP, ContentProvider, Market, exponential_cp
from repro.scenarios import ScenarioSpec, random_market, scaled_market

#: One representative instance per serializable family, with non-default
#: parameters so a lossy round trip cannot hide behind defaults. Every
#: family registered in ``repro.io._FAMILIES`` must appear here — the
#: parametrized round-trip test below fails on a newly registered family
#: until an exemplar is added.
FAMILY_EXEMPLARS = {
    "ExponentialDemand": ExponentialDemand(alpha=2.5, scale=1.2),
    "LogitDemand": LogitDemand(alpha=4.0, midpoint=0.7, scale=1.5),
    "LinearDemand": LinearDemand(base=1.4, slope=0.6, smoothing=2e-3),
    "ShiftedPowerDemand": ShiftedPowerDemand(alpha=1.8, scale=0.9),
    "ScaledDemand": ScaledDemand(
        ScaledDemand(LogitDemand(alpha=3.0, midpoint=0.5), 0.5), 0.4
    ),
    "ExponentialThroughput": ExponentialThroughput(beta=3.5, peak=1.1),
    "PowerLawThroughput": PowerLawThroughput(beta=2.5, peak=1.2),
    "RationalThroughput": RationalThroughput(beta=1.5, peak=0.9),
    "LinearUtilization": LinearUtilization(),
    "PowerLawUtilization": PowerLawUtilization(gamma=1.7),
    "MM1Utilization": MM1Utilization(),
}

_FALLBACK_DEMAND = ExponentialDemand(alpha=1.0)
_FALLBACK_THROUGHPUT = ExponentialThroughput(beta=1.0)


def market_embedding(func) -> Market:
    """A market carrying ``func`` in its natural slot (demand/throughput/Φ)."""
    demand, throughput, utilization = (
        _FALLBACK_DEMAND, _FALLBACK_THROUGHPUT, LinearUtilization(),
    )
    if isinstance(func, DemandFunction):
        demand = func
    elif isinstance(func, ThroughputFunction):
        throughput = func
    elif isinstance(func, UtilizationFunction):
        utilization = func
    else:  # pragma: no cover - exemplar table out of sync
        raise TypeError(f"unknown family kind: {type(func).__name__}")
    return Market(
        [ContentProvider(demand=demand, throughput=throughput, value=0.3)],
        AccessISP(price=1.0, capacity=1.5, utilization=utilization),
    )


def rich_market() -> Market:
    """A market touching every serializable family."""
    return Market(
        [
            exponential_cp(2.0, 3.0, value=1.0, name="exp-cp"),
            ContentProvider(
                demand=ScaledDemand(LogitDemand(alpha=4.0, midpoint=0.7), 0.3),
                throughput=PowerLawThroughput(beta=2.5, peak=1.2),
                value=0.4,
                name="wrapped-cp",
            ),
        ],
        AccessISP(price=0.9, capacity=2.0, utilization=MM1Utilization(), name="isp"),
    )


class TestRoundTrip:
    def test_dict_round_trip_preserves_behavior(self):
        market = rich_market()
        rebuilt = market_from_dict(market_to_dict(market))
        s = [0.2, 0.1]
        original = market.solve(s)
        copy = rebuilt.solve(s)
        assert copy.utilization == pytest.approx(original.utilization, rel=1e-12)
        np.testing.assert_allclose(copy.throughputs, original.throughputs)
        np.testing.assert_allclose(copy.utilities, original.utilities)

    def test_file_round_trip(self, tmp_path):
        market = rich_market()
        path = tmp_path / "nested" / "market.json"
        save_market(market, path)
        rebuilt = load_market(path)
        assert rebuilt.isp.price == market.isp.price
        assert rebuilt.provider_names() == market.provider_names()

    def test_paper_scenarios_round_trip(self, tmp_path):
        from repro.experiments.scenarios import section3_market, section5_market

        for market in (section3_market(), section5_market()):
            path = tmp_path / "m.json"
            save_market(market, path)
            rebuilt = load_market(path)
            assert rebuilt.solve().utilization == pytest.approx(
                market.solve().utilization, rel=1e-12
            )

    def test_output_is_plain_json(self, tmp_path):
        path = tmp_path / "m.json"
        save_market(rich_market(), path)
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro-market/1"
        assert payload["isp"]["utilization"]["type"] == "MM1Utilization"


class TestEveryFamilyRoundTrips:
    """Satellite guard: a newly registered family cannot silently break IO.

    Parametrized over ``repro.io._FAMILIES`` itself — registering a family
    without adding an exemplar here fails the lookup assertion, and the
    exemplar then proves the family (including nested wrappers like
    ``ScaledDemand``) reconstructs exactly.
    """

    @pytest.mark.parametrize("family_name", sorted(_FAMILIES))
    def test_family_round_trip(self, family_name):
        assert family_name in FAMILY_EXEMPLARS, (
            f"{family_name} is registered in repro.io._FAMILIES but has no "
            "exemplar in FAMILY_EXEMPLARS; add one so serialization of the "
            "new family is covered"
        )
        exemplar = FAMILY_EXEMPLARS[family_name]
        market = market_embedding(exemplar)
        rebuilt = market_from_dict(market_to_dict(market))
        slots = [
            rebuilt.providers[0].demand,
            rebuilt.providers[0].throughput,
            rebuilt.isp.utilization,
        ]
        # Frozen dataclasses compare by value, nested wrappers included.
        assert exemplar in slots

    def test_exemplars_cover_exactly_the_registry(self):
        assert set(FAMILY_EXEMPLARS) == set(_FAMILIES)


class TestScenarioFormat:
    def make_spec(self) -> ScenarioSpec:
        return ScenarioSpec(
            scenario_id="io-test",
            title="io round-trip scenario",
            market=rich_market(),
            prices=(0.0, 0.5, 1.0),
            policy_levels=(0.0, 1.0),
            metadata={"source": "test", "seed": 3},
        )

    def test_dict_round_trip(self):
        spec = self.make_spec()
        rebuilt = scenario_from_dict(scenario_to_dict(spec))
        assert scenario_to_dict(rebuilt) == scenario_to_dict(spec)
        assert rebuilt.scenario_id == "io-test"
        assert rebuilt.prices == spec.prices
        assert rebuilt.policy_levels == spec.policy_levels
        assert dict(rebuilt.metadata) == {"source": "test", "seed": 3}

    def test_file_round_trip(self, tmp_path):
        spec = self.make_spec()
        path = tmp_path / "nested" / "scenario.json"
        save_scenario(spec, path)
        rebuilt = load_scenario(path)
        assert scenario_to_dict(rebuilt) == scenario_to_dict(spec)

    def test_output_is_versioned_json_embedding_the_market(self, tmp_path):
        path = tmp_path / "s.json"
        save_scenario(self.make_spec(), path)
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro-scenario/1"
        assert payload["market"]["format"] == "repro-market/1"

    def test_generated_scenarios_round_trip_with_seed(self):
        for spec in (random_market(99, 5), scaled_market(16)):
            rebuilt = scenario_from_dict(scenario_to_dict(spec))
            assert scenario_to_dict(rebuilt) == scenario_to_dict(spec)
        assert scenario_from_dict(
            scenario_to_dict(random_market(99, 5))
        ).metadata["seed"] == 99

    def test_market_payload_accepted_as_scenario(self):
        # repro-scenario/1 is a superset: a bare market file loads too.
        spec = scenario_from_dict(market_to_dict(rich_market()))
        assert spec.scenario_id == "imported-market"
        assert spec.size == 2
        assert len(spec.prices) == 41  # default paper axes

    def test_wrong_format_rejected(self):
        with pytest.raises(ModelError):
            scenario_from_dict({"format": "something-else"})

    def test_missing_keys_rejected(self):
        payload = scenario_to_dict(self.make_spec())
        del payload["market"]
        with pytest.raises(ModelError):
            scenario_from_dict(payload)


class TestDynamicsBlock:
    """The versioned repro-dynamics/1 block riding in scenario metadata."""

    def make_spec(self, **dynamics_kwargs) -> ScenarioSpec:
        from repro.io import dynamics_to_dict
        from repro.simulation import DynamicsSpec, Shock

        block = dynamics_to_dict(
            DynamicsSpec(
                kind="capacity",
                horizon=6,
                segment_length=2,
                cap=0.5,
                shocks=(Shock(3, "capacity", 0.8),),
                **dynamics_kwargs,
            )
        )
        return ScenarioSpec(
            scenario_id="io-dyn",
            title="dynamics round-trip scenario",
            market=rich_market(),
            prices=(0.0, 1.0),
            policy_levels=(0.0,),
            metadata={"dynamics": block},
        )

    def test_block_round_trips_bitwise(self):
        from repro.io import dynamics_from_dict

        spec = self.make_spec()
        payload = json.loads(json.dumps(scenario_to_dict(spec)))
        rebuilt = scenario_from_dict(payload)
        assert scenario_to_dict(rebuilt) == scenario_to_dict(spec)
        restored = dynamics_from_dict(rebuilt.metadata["dynamics"])
        assert restored.horizon == 6
        assert restored.shocks[0].scale == 0.8

    def test_block_has_its_own_format_tag(self, tmp_path):
        from repro.io import DYNAMICS_FORMAT

        path = tmp_path / "s.json"
        save_scenario(self.make_spec(), path)
        payload = json.loads(path.read_text())
        assert payload["metadata"]["dynamics"]["format"] == DYNAMICS_FORMAT

    def test_malformed_block_rejected_on_load(self):
        payload = scenario_to_dict(self.make_spec())
        payload["metadata"]["dynamics"]["format"] = "repro-dynamics/999"
        with pytest.raises(ModelError):
            scenario_from_dict(payload)

    def test_unknown_block_field_rejected_on_load(self):
        payload = scenario_to_dict(self.make_spec())
        payload["metadata"]["dynamics"]["mystery"] = 1
        with pytest.raises(ModelError):
            scenario_from_dict(payload)

    def test_malformed_block_rejected_on_save(self):
        spec = ScenarioSpec(
            scenario_id="io-dyn-bad",
            title="bad block",
            market=rich_market(),
            prices=(0.0, 1.0),
            policy_levels=(0.0,),
            metadata={"dynamics": {"format": "nope"}},
        )
        with pytest.raises(ModelError):
            scenario_to_dict(spec)

    def test_dynamics_from_dict_requires_mapping(self):
        from repro.io import dynamics_from_dict

        with pytest.raises(ModelError):
            dynamics_from_dict(["not", "a", "mapping"])


class TestErrorHandling:
    def test_unknown_family_rejected(self):
        payload = market_to_dict(rich_market())
        payload["isp"]["utilization"]["type"] = "EvilClass"
        with pytest.raises(ModelError):
            market_from_dict(payload)

    def test_wrong_format_rejected(self):
        with pytest.raises(ModelError):
            market_from_dict({"format": "something-else"})

    def test_malformed_function_payload_rejected(self):
        payload = market_to_dict(rich_market())
        payload["providers"][0]["demand"] = {"nope": 1}
        with pytest.raises(ModelError):
            market_from_dict(payload)

    def test_unserializable_family_rejected(self):
        from repro.network.demand import DemandFunction

        class CustomDemand(DemandFunction):
            def population(self, price):
                return 1.0

            def d_population(self, price):
                return 0.0

        market = Market(
            [
                ContentProvider(
                    demand=CustomDemand(),
                    throughput=PowerLawThroughput(beta=1.0),
                    value=0.1,
                )
            ],
            AccessISP(price=1.0, capacity=1.0),
        )
        with pytest.raises(ModelError):
            market_to_dict(market)
