"""Unit tests for repro.io — market serialization."""

import json

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.io import load_market, market_from_dict, market_to_dict, save_market
from repro.network.demand import LogitDemand, ScaledDemand
from repro.network.throughput import PowerLawThroughput
from repro.network.utilization import MM1Utilization
from repro.providers import AccessISP, ContentProvider, Market, exponential_cp


def rich_market() -> Market:
    """A market touching every serializable family."""
    return Market(
        [
            exponential_cp(2.0, 3.0, value=1.0, name="exp-cp"),
            ContentProvider(
                demand=ScaledDemand(LogitDemand(alpha=4.0, midpoint=0.7), 0.3),
                throughput=PowerLawThroughput(beta=2.5, peak=1.2),
                value=0.4,
                name="wrapped-cp",
            ),
        ],
        AccessISP(price=0.9, capacity=2.0, utilization=MM1Utilization(), name="isp"),
    )


class TestRoundTrip:
    def test_dict_round_trip_preserves_behavior(self):
        market = rich_market()
        rebuilt = market_from_dict(market_to_dict(market))
        s = [0.2, 0.1]
        original = market.solve(s)
        copy = rebuilt.solve(s)
        assert copy.utilization == pytest.approx(original.utilization, rel=1e-12)
        np.testing.assert_allclose(copy.throughputs, original.throughputs)
        np.testing.assert_allclose(copy.utilities, original.utilities)

    def test_file_round_trip(self, tmp_path):
        market = rich_market()
        path = tmp_path / "nested" / "market.json"
        save_market(market, path)
        rebuilt = load_market(path)
        assert rebuilt.isp.price == market.isp.price
        assert rebuilt.provider_names() == market.provider_names()

    def test_paper_scenarios_round_trip(self, tmp_path):
        from repro.experiments.scenarios import section3_market, section5_market

        for market in (section3_market(), section5_market()):
            path = tmp_path / "m.json"
            save_market(market, path)
            rebuilt = load_market(path)
            assert rebuilt.solve().utilization == pytest.approx(
                market.solve().utilization, rel=1e-12
            )

    def test_output_is_plain_json(self, tmp_path):
        path = tmp_path / "m.json"
        save_market(rich_market(), path)
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro-market/1"
        assert payload["isp"]["utilization"]["type"] == "MM1Utilization"


class TestErrorHandling:
    def test_unknown_family_rejected(self):
        payload = market_to_dict(rich_market())
        payload["isp"]["utilization"]["type"] = "EvilClass"
        with pytest.raises(ModelError):
            market_from_dict(payload)

    def test_wrong_format_rejected(self):
        with pytest.raises(ModelError):
            market_from_dict({"format": "something-else"})

    def test_malformed_function_payload_rejected(self):
        payload = market_to_dict(rich_market())
        payload["providers"][0]["demand"] = {"nope": 1}
        with pytest.raises(ModelError):
            market_from_dict(payload)

    def test_unserializable_family_rejected(self):
        from repro.network.demand import DemandFunction

        class CustomDemand(DemandFunction):
            def population(self, price):
                return 1.0

            def d_population(self, price):
                return 0.0

        market = Market(
            [
                ContentProvider(
                    demand=CustomDemand(),
                    throughput=PowerLawThroughput(beta=1.0),
                    value=0.1,
                )
            ],
            AccessISP(price=1.0, capacity=1.0),
        )
        with pytest.raises(ModelError):
            market_to_dict(market)
