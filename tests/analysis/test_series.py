"""Unit tests for repro.analysis.series."""

import csv

import numpy as np
import pytest

from repro.analysis.series import FigureData, Series
from repro.exceptions import ModelError


def make_figure():
    x = np.linspace(0.0, 1.0, 5)
    return FigureData(
        figure_id="test-fig",
        title="A test figure",
        x_label="p",
        y_label="y",
        x=x,
        series=(Series("a", x**2), Series("b", 1.0 - x)),
    )


class TestSeries:
    def test_coerces_to_float_array(self):
        s = Series("x", [1, 2, 3])
        assert s.y.dtype == float

    def test_rejects_2d(self):
        with pytest.raises(ModelError):
            Series("x", np.zeros((2, 2)))


class TestFigureData:
    def test_rejects_length_mismatch(self):
        with pytest.raises(ModelError):
            FigureData(
                figure_id="f",
                title="t",
                x_label="x",
                y_label="y",
                x=np.arange(3.0),
                series=(Series("a", np.arange(4.0)),),
            )

    def test_series_lookup(self):
        figure = make_figure()
        assert figure.series_by_name("b").y[0] == 1.0
        with pytest.raises(KeyError):
            figure.series_by_name("missing")

    def test_names_in_order(self):
        assert make_figure().names() == ["a", "b"]

    def test_csv_round_trip(self, tmp_path):
        figure = make_figure()
        path = tmp_path / "sub" / "fig.csv"
        figure.to_csv(path)  # creates parent directories
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["p", "a", "b"]
        assert len(rows) == 6
        # repr round-trip preserves exact float values.
        assert float(rows[3][1]) == figure.series[0].y[2]
