"""Unit tests for repro.analysis.reporting."""

import csv

import pytest

from repro.analysis.reporting import format_table, write_csv
from repro.exceptions import ModelError


class TestFormatTable:
    def test_aligns_columns(self):
        out = format_table(["name", "value"], [["a", 1.0], ["long-name", 2.5]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1  # equal widths

    def test_formats_floats(self):
        out = format_table(["v"], [[1.23456789]])
        assert "1.23457" in out

    def test_accepts_custom_float_format(self):
        out = format_table(["v"], [[1.23456789]], float_format="{:.2f}")
        assert "1.23" in out

    def test_rejects_ragged_rows(self):
        with pytest.raises(ModelError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_rows_renders_header(self):
        out = format_table(["a", "b"], [])
        assert "a" in out and "b" in out


class TestWriteCsv:
    def test_writes_and_creates_directories(self, tmp_path):
        path = tmp_path / "deep" / "file.csv"
        write_csv(path, ["x", "y"], [[1, 2], [3, 4]])
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows == [["x", "y"], ["1", "2"], ["3", "4"]]

    def test_rejects_ragged_rows(self, tmp_path):
        with pytest.raises(ModelError):
            write_csv(tmp_path / "f.csv", ["a"], [[1, 2]])
