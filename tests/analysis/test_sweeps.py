"""Unit tests for repro.analysis.sweeps."""

import numpy as np
import pytest

from repro.analysis.sweeps import policy_grid, price_sweep
from repro.engine.grid_engine import solve_cap_row
from repro.exceptions import ModelError


class TestEnginePathGolden:
    """Golden: the service-routed sweeps == direct warm-chained solves."""

    def test_price_sweep_bitwise_parity_with_direct_row(self, two_cp_market):
        prices = np.linspace(0.2, 1.4, 5)
        direct = solve_cap_row(two_cp_market, prices, 0.8, warm_start=True)
        routed = price_sweep(two_cp_market, prices, cap=0.8)
        for a, b in zip(direct, routed):
            assert a.subsidies.tobytes() == b.subsidies.tobytes()
            assert a.state.utilization == b.state.utilization
            assert a.kkt_residual == b.kkt_residual

    def test_policy_grid_bitwise_parity_with_direct_rows(self, two_cp_market):
        prices = np.linspace(0.2, 1.4, 4)
        caps = (0.0, 0.4, 0.8)
        grid = policy_grid(two_cp_market, prices, caps)
        for k, cap in enumerate(caps):
            direct = solve_cap_row(two_cp_market, prices, cap, warm_start=True)
            for j, eq in enumerate(direct):
                assert (
                    grid.at(k, j).subsidies.tobytes() == eq.subsidies.tobytes()
                )
                assert grid.at(k, j).state.revenue == eq.state.revenue


class TestPriceSweep:
    def test_one_result_per_price(self, two_cp_market):
        results = price_sweep(two_cp_market, [0.5, 1.0, 1.5], cap=0.5)
        assert len(results) == 3
        for result, p in zip(results, [0.5, 1.0, 1.5]):
            assert result.state.price == pytest.approx(p)

    def test_warm_start_matches_cold_start(self, two_cp_market):
        prices = np.linspace(0.2, 1.4, 7)
        warm = price_sweep(two_cp_market, prices, cap=0.8, warm_start=True)
        cold = price_sweep(two_cp_market, prices, cap=0.8, warm_start=False)
        for a, b in zip(warm, cold):
            np.testing.assert_allclose(a.subsidies, b.subsidies, atol=1e-7)

    def test_zero_cap_equals_plain_solve(self, two_cp_market):
        results = price_sweep(two_cp_market, [0.7], cap=0.0)
        assert results[0].state.revenue == pytest.approx(
            two_cp_market.with_price(0.7).solve().revenue
        )


class TestPolicyGrid:
    def test_grid_shape_and_accessors(self, two_cp_market):
        grid = policy_grid(two_cp_market, [0.5, 1.0], [0.0, 0.4])
        assert grid.prices.shape == (2,)
        assert grid.caps.shape == (2,)
        assert grid.at(1, 0).state.price == pytest.approx(0.5)

    def test_quantity_matrix(self, two_cp_market):
        grid = policy_grid(two_cp_market, [0.5, 1.0], [0.0, 0.4])
        revenue = grid.quantity(lambda eq: eq.state.revenue)
        assert revenue.shape == (2, 2)
        assert revenue[0, 0] == pytest.approx(grid.at(0, 0).state.revenue)

    def test_provider_quantity_cube(self, two_cp_market):
        grid = policy_grid(two_cp_market, [0.5, 1.0], [0.0, 0.4])
        subsidies = grid.provider_quantity(lambda eq: eq.subsidies)
        assert subsidies.shape == (2, 2, 2)
        # q = 0 row must be all zeros.
        np.testing.assert_array_equal(subsidies[0], 0.0)

    def test_validates_axes(self, two_cp_market):
        with pytest.raises(ModelError):
            policy_grid(two_cp_market, [], [0.0])
        with pytest.raises(ModelError):
            policy_grid(two_cp_market, [1.0], [])
