"""Unit tests for repro.analysis.continuation — equilibrium path tracing."""

import numpy as np
import pytest

from repro.analysis.continuation import (
    Breakpoint,
    EquilibriumPath,
    trace_equilibrium_path,
)
from repro.core.characterization import classify_providers
from repro.core.equilibrium import solve_equilibrium
from repro.core.game import SubsidizationGame
from repro.engine import GridEngine, SolveCache, SolveService, SolveStore
from repro.exceptions import ModelError
from repro.experiments.scenarios import section5_market


@pytest.fixture(scope="module")
def kinked_path():
    """q = 0.45 on the §5 market: one CP leaves the cap and returns."""
    return trace_equilibrium_path(
        section5_market(), np.linspace(0.05, 2.0, 25), cap=0.45
    )


class TestPathStructure:
    def test_shapes(self, kinked_path):
        assert kinked_path.subsidies.shape == (25, 8)
        assert len(kinked_path.partitions) == 25

    def test_path_points_are_equilibria(self, kinked_path):
        market = section5_market()
        for k in (0, 12, 24):
            p = float(kinked_path.prices[k])
            direct = solve_equilibrium(
                SubsidizationGame(market.with_price(p), 0.45)
            )
            np.testing.assert_allclose(
                kinked_path.subsidies[k], direct.subsidies, atol=1e-7
            )

    def test_path_is_continuous(self, kinked_path):
        jumps = np.max(np.abs(np.diff(kinked_path.subsidies, axis=0)), axis=1)
        assert np.max(jumps) < 0.1  # no equilibrium-branch jumping


class TestBreakpoints:
    def test_detects_the_two_kinks(self, kinked_path):
        locations = [bp.price for bp in kinked_path.breakpoints]
        assert len(locations) == 2
        assert locations[0] == pytest.approx(0.67, abs=0.05)
        assert locations[1] == pytest.approx(1.64, abs=0.05)

    def test_partitions_actually_differ_across_each_breakpoint(
        self, kinked_path
    ):
        for bp in kinked_path.breakpoints:
            assert (
                bp.before.zero,
                bp.before.capped,
                bp.before.interior,
            ) != (bp.after.zero, bp.after.capped, bp.after.interior)

    def test_breakpoints_verified_by_direct_solves(self, kinked_path):
        # Just left/right of each refined breakpoint, the partition from a
        # cold solve matches the recorded sides.
        market = section5_market()
        bp = kinked_path.breakpoints[0]
        delta = 5e-3
        for price, expected in (
            (bp.price - delta, bp.before),
            (bp.price + delta, bp.after),
        ):
            game = SubsidizationGame(market.with_price(price), 0.45)
            eq = solve_equilibrium(game)
            partition = classify_providers(game, eq.subsidies, boundary_tol=1e-7)
            assert partition.capped == expected.capped

    def test_smooth_segments_cover_the_axis(self, kinked_path):
        segments = kinked_path.smooth_segments()
        assert segments[0][0] == pytest.approx(0.05)
        assert segments[-1][1] == pytest.approx(2.0)
        assert len(segments) == len(kinked_path.breakpoints) + 1
        for (a, b) in segments:
            assert a < b

    def test_no_breakpoints_on_a_stable_partition(self):
        path = trace_equilibrium_path(
            section5_market(), np.linspace(0.1, 1.0, 8), cap=0.3
        )
        assert path.breakpoints == ()
        assert len(path.smooth_segments()) == 1


def legacy_trace_equilibrium_path(
    market, prices, cap, *, price_tol=1e-6, boundary_tol=1e-7
):
    """The pre-refactor in-process trace loop, re-implemented verbatim.

    Golden reference: before the solve-service reroute, the grid sweep and
    every bisection solve ran inline here. The rerouted trace must match
    it bit for bit.
    """
    prices = np.asarray(prices, dtype=float)

    def solve_at(p, warm=None):
        game = SubsidizationGame(market.with_price(float(p)), cap)
        eq = solve_equilibrium(game, initial=warm)
        partition = classify_providers(
            game, eq.subsidies, boundary_tol=boundary_tol
        )
        return eq, partition

    def partition_key(partition):
        return (partition.zero, partition.capped, partition.interior)

    subsidies = []
    partitions = []
    warm = None
    for p in prices:
        eq, partition = solve_at(p, warm)
        warm = eq.subsidies
        subsidies.append(eq.subsidies.copy())
        partitions.append(partition)

    breakpoints = []
    for k in range(prices.size - 1):
        if partition_key(partitions[k]) == partition_key(partitions[k + 1]):
            continue
        lo, hi = float(prices[k]), float(prices[k + 1])
        part_lo, part_hi = partitions[k], partitions[k + 1]
        warm = subsidies[k].copy()
        while hi - lo > price_tol:
            mid = 0.5 * (lo + hi)
            eq, part_mid = solve_at(mid, warm)
            warm = eq.subsidies
            if partition_key(part_mid) == partition_key(part_lo):
                lo = mid
            else:
                hi, part_hi = mid, part_mid
        breakpoints.append(
            Breakpoint(price=0.5 * (lo + hi), before=part_lo, after=part_hi)
        )

    return EquilibriumPath(
        prices=prices,
        subsidies=np.array(subsidies),
        partitions=tuple(partitions),
        breakpoints=tuple(breakpoints),
        cap=cap,
    )


def assert_paths_bitwise_equal(a, b):
    assert a.subsidies.tobytes() == b.subsidies.tobytes()
    assert a.partitions == b.partitions
    assert len(a.breakpoints) == len(b.breakpoints)
    for x, y in zip(a.breakpoints, b.breakpoints):
        assert x.price == y.price
        assert x.before == y.before
        assert x.after == y.after


class TestEnginePathGolden:
    """Golden: the service-routed trace == the pre-refactor inline loop."""

    PRICES = np.linspace(0.05, 2.0, 13)

    def test_trace_with_kinks_bitwise_parity(self):
        market = section5_market()
        legacy = legacy_trace_equilibrium_path(market, self.PRICES, cap=0.45)
        routed = trace_equilibrium_path(
            market,
            self.PRICES,
            cap=0.45,
            service=SolveService(cache=SolveCache()),
        )
        assert len(legacy.breakpoints) > 0  # the refinement path is exercised
        assert_paths_bitwise_equal(legacy, routed)

    def test_warm_store_replays_trace_without_solves(self, tmp_path):
        market = section5_market()
        first = trace_equilibrium_path(
            market,
            self.PRICES,
            cap=0.45,
            service=SolveService(cache=SolveCache(), store=SolveStore(tmp_path)),
        )
        replay_service = SolveService(
            cache=SolveCache(), store=SolveStore(tmp_path)
        )
        second = trace_equilibrium_path(
            market, self.PRICES, cap=0.45, service=replay_service
        )
        assert replay_service.counters.computed == 0
        assert replay_service.counters.store_hits > 0
        assert_paths_bitwise_equal(first, second)

    def test_trace_reuses_grid_engine_rows(self):
        # The on-grid portion of a trace is a cap row with the grid
        # engine's own content key: tracing along axes a figure grid has
        # already solved re-solves nothing on that grid.
        market = section5_market()
        service = SolveService(cache=SolveCache())
        prices = np.linspace(0.1, 1.0, 8)
        GridEngine(service=service).solve_grid(
            market, prices, np.array([0.3])
        )
        solved_rows = service.counters.computed
        path = trace_equilibrium_path(market, prices, 0.3, service=service)
        assert service.counters.computed == solved_rows  # row came from cache
        assert service.counters.memory_hits >= 1
        assert path.subsidies.shape == (8, market.size)


class TestValidation:
    def test_rejects_bad_grids(self):
        market = section5_market()
        with pytest.raises(ModelError):
            trace_equilibrium_path(market, [1.0], cap=0.5)
        with pytest.raises(ModelError):
            trace_equilibrium_path(market, [1.0, 0.5], cap=0.5)
