"""Unit tests for repro.analysis.continuation — equilibrium path tracing."""

import numpy as np
import pytest

from repro.analysis.continuation import trace_equilibrium_path
from repro.core.characterization import classify_providers
from repro.core.equilibrium import solve_equilibrium
from repro.core.game import SubsidizationGame
from repro.exceptions import ModelError
from repro.experiments.scenarios import section5_market


@pytest.fixture(scope="module")
def kinked_path():
    """q = 0.45 on the §5 market: one CP leaves the cap and returns."""
    return trace_equilibrium_path(
        section5_market(), np.linspace(0.05, 2.0, 25), cap=0.45
    )


class TestPathStructure:
    def test_shapes(self, kinked_path):
        assert kinked_path.subsidies.shape == (25, 8)
        assert len(kinked_path.partitions) == 25

    def test_path_points_are_equilibria(self, kinked_path):
        market = section5_market()
        for k in (0, 12, 24):
            p = float(kinked_path.prices[k])
            direct = solve_equilibrium(
                SubsidizationGame(market.with_price(p), 0.45)
            )
            np.testing.assert_allclose(
                kinked_path.subsidies[k], direct.subsidies, atol=1e-7
            )

    def test_path_is_continuous(self, kinked_path):
        jumps = np.max(np.abs(np.diff(kinked_path.subsidies, axis=0)), axis=1)
        assert np.max(jumps) < 0.1  # no equilibrium-branch jumping


class TestBreakpoints:
    def test_detects_the_two_kinks(self, kinked_path):
        locations = [bp.price for bp in kinked_path.breakpoints]
        assert len(locations) == 2
        assert locations[0] == pytest.approx(0.67, abs=0.05)
        assert locations[1] == pytest.approx(1.64, abs=0.05)

    def test_partitions_actually_differ_across_each_breakpoint(
        self, kinked_path
    ):
        for bp in kinked_path.breakpoints:
            assert (
                bp.before.zero,
                bp.before.capped,
                bp.before.interior,
            ) != (bp.after.zero, bp.after.capped, bp.after.interior)

    def test_breakpoints_verified_by_direct_solves(self, kinked_path):
        # Just left/right of each refined breakpoint, the partition from a
        # cold solve matches the recorded sides.
        market = section5_market()
        bp = kinked_path.breakpoints[0]
        delta = 5e-3
        for price, expected in (
            (bp.price - delta, bp.before),
            (bp.price + delta, bp.after),
        ):
            game = SubsidizationGame(market.with_price(price), 0.45)
            eq = solve_equilibrium(game)
            partition = classify_providers(game, eq.subsidies, boundary_tol=1e-7)
            assert partition.capped == expected.capped

    def test_smooth_segments_cover_the_axis(self, kinked_path):
        segments = kinked_path.smooth_segments()
        assert segments[0][0] == pytest.approx(0.05)
        assert segments[-1][1] == pytest.approx(2.0)
        assert len(segments) == len(kinked_path.breakpoints) + 1
        for (a, b) in segments:
            assert a < b

    def test_no_breakpoints_on_a_stable_partition(self):
        path = trace_equilibrium_path(
            section5_market(), np.linspace(0.1, 1.0, 8), cap=0.3
        )
        assert path.breakpoints == ()
        assert len(path.smooth_segments()) == 1


class TestValidation:
    def test_rejects_bad_grids(self):
        market = section5_market()
        with pytest.raises(ModelError):
            trace_equilibrium_path(market, [1.0], cap=0.5)
        with pytest.raises(ModelError):
            trace_equilibrium_path(market, [1.0, 0.5], cap=0.5)
