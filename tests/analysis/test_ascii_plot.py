"""Unit tests for repro.analysis.ascii_plot."""

import numpy as np
import pytest

from repro.analysis.ascii_plot import render_chart
from repro.analysis.series import FigureData, Series
from repro.exceptions import ModelError


def make_figure(ys=None):
    x = np.linspace(0.0, 2.0, 21)
    if ys is None:
        ys = (Series("up", x), Series("down", 2.0 - x))
    return FigureData(
        figure_id="f1",
        title="Chart",
        x_label="p",
        y_label="y",
        x=x,
        series=ys,
    )


class TestRenderChart:
    def test_contains_title_and_legend(self):
        out = render_chart(make_figure())
        assert "Chart" in out
        assert "o up" in out
        assert "* down" in out

    def test_has_requested_height(self):
        out = render_chart(make_figure(), height=12)
        grid_rows = [line for line in out.splitlines() if "|" in line]
        assert len(grid_rows) == 12

    def test_markers_land_on_extremes(self):
        out = render_chart(make_figure())
        lines = [l for l in out.splitlines() if "|" in l]
        # Increasing series must put a marker in the last column of the top
        # row and the first column of the bottom row.
        assert lines[0].rstrip().endswith("o|") or "o" in lines[0]
        assert "o" in lines[-1]

    def test_constant_series_renders(self):
        figure = make_figure(ys=(Series("flat", np.full(21, 3.0)),))
        out = render_chart(figure)
        assert "flat" in out

    def test_skips_non_finite_values(self):
        y = np.linspace(0.0, 1.0, 21)
        y[5] = np.nan
        out = render_chart(make_figure(ys=(Series("gappy", y),)))
        assert "gappy" in out

    def test_rejects_empty_figure(self):
        figure = FigureData(
            figure_id="empty",
            title="t",
            x_label="x",
            y_label="y",
            x=np.array([]),
            series=(),
        )
        with pytest.raises(ModelError):
            render_chart(figure)

    def test_rejects_all_nan(self):
        figure = make_figure(ys=(Series("nan", np.full(21, np.nan)),))
        with pytest.raises(ModelError):
            render_chart(figure)

    def test_rejects_tiny_canvas(self):
        with pytest.raises(ModelError):
            render_chart(make_figure(), width=5, height=2)
