"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.providers.content_provider import exponential_cp
from repro.providers.isp import AccessISP
from repro.providers.market import Market


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: heavyweight stress variants, skipped unless "
        "$REPRO_SLOW_TESTS is set (CI's dedicated jobs enable them)",
    )


def pytest_collection_modifyitems(config, items):
    if os.environ.get("REPRO_SLOW_TESTS", "").strip():
        return
    skip = pytest.mark.skip(reason="slow stress variant; set REPRO_SLOW_TESTS=1")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip)


def finite_difference(func, x: float, h: float = 1e-6) -> float:
    """Plain central difference used to validate analytic derivatives."""
    return (func(x + h) - func(x - h)) / (2.0 * h)


@pytest.fixture
def two_cp_market() -> Market:
    """A tiny asymmetric market: profitable/price-elastic vs cheap/sticky."""
    return Market(
        [
            exponential_cp(5.0, 2.0, value=1.0, name="big"),
            exponential_cp(2.0, 5.0, value=0.4, name="small"),
        ],
        AccessISP(price=1.0, capacity=1.0),
    )


@pytest.fixture
def four_cp_market() -> Market:
    """A four-type market spanning the §5 parameter corners."""
    return Market(
        [
            exponential_cp(2.0, 2.0, value=1.0, name="a2b2v1"),
            exponential_cp(5.0, 5.0, value=0.5, name="a5b5v05"),
            exponential_cp(2.0, 5.0, value=1.0, name="a2b5v1"),
            exponential_cp(5.0, 2.0, value=0.5, name="a5b2v05"),
        ],
        AccessISP(price=1.0, capacity=1.0),
    )
