"""Unit tests for repro.network.demand (Assumption 2 compliance)."""

import math

import pytest

from repro.exceptions import ModelError
from repro.network.demand import (
    ExponentialDemand,
    LinearDemand,
    LogitDemand,
    ShiftedPowerDemand,
)
from repro.solvers.differentiation import derivative

ALL_FAMILIES = [
    ExponentialDemand(alpha=2.0),
    ExponentialDemand(alpha=5.0, scale=3.0),
    LogitDemand(alpha=4.0, midpoint=1.0),
    # Gentle smoothing so the exponential tail is resolvable by the finite
    # differences this parametrized suite applies.
    LinearDemand(base=2.0, slope=1.0, smoothing=0.1),
    ShiftedPowerDemand(alpha=3.0),
]


@pytest.mark.parametrize("family", ALL_FAMILIES, ids=lambda f: repr(f))
class TestAssumptionTwo:
    def test_decreasing_in_price(self, family):
        prices = [-1.0, 0.0, 0.5, 1.0, 2.0, 5.0]
        pops = [family.population(t) for t in prices]
        assert all(b <= a for a, b in zip(pops, pops[1:]))

    def test_vanishes_at_high_prices(self, family):
        assert family.population(200.0) < 1e-6

    def test_positive_at_zero_price(self, family):
        assert family.population(0.0) > 0.0

    def test_defined_for_negative_prices(self, family):
        # Subsidies above the ISP price produce negative effective prices;
        # the demand functions must handle them (users get paid to consume).
        assert family.population(-0.5) >= family.population(0.0)

    def test_derivative_matches_finite_difference(self, family):
        for t in (-0.5, 0.0, 0.7, 2.0):
            fd = derivative(family.population, t)
            assert family.d_population(t) == pytest.approx(fd, rel=1e-5, abs=1e-10)

    def test_derivative_non_positive(self, family):
        for t in (-1.0, 0.0, 1.0, 3.0):
            assert family.d_population(t) <= 0.0


class TestExponentialDemand:
    def test_closed_form(self):
        d = ExponentialDemand(alpha=3.0, scale=2.0)
        assert d.population(0.5) == pytest.approx(2.0 * math.exp(-1.5))

    def test_elasticity_is_minus_alpha_t(self):
        d = ExponentialDemand(alpha=4.0)
        assert d.elasticity(0.25) == pytest.approx(-1.0)
        assert d.elasticity(0.0) == 0.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ModelError):
            ExponentialDemand(alpha=-1.0)
        with pytest.raises(ModelError):
            ExponentialDemand(alpha=1.0, scale=0.0)


class TestLogitDemand:
    def test_half_population_at_midpoint(self):
        d = LogitDemand(alpha=3.0, midpoint=0.8, scale=2.0)
        assert d.population(0.8) == pytest.approx(1.0)

    def test_saturates_at_scale(self):
        d = LogitDemand(alpha=3.0, midpoint=1.0, scale=5.0)
        assert d.population(-100.0) == pytest.approx(5.0, rel=1e-9)

    def test_extreme_prices_do_not_overflow(self):
        d = LogitDemand(alpha=10.0)
        assert d.population(1e3) == 0.0
        assert d.d_population(1e3) == 0.0


class TestLinearDemand:
    def test_linear_region(self):
        d = LinearDemand(base=2.0, slope=0.5)
        assert d.population(1.0) == pytest.approx(1.5)
        assert d.d_population(1.0) == pytest.approx(-0.5)

    def test_smooth_tail_stays_positive(self):
        d = LinearDemand(base=1.0, slope=1.0, smoothing=0.1)
        assert 0.0 < d.population(10.0) < 0.1

    def test_c1_at_switch_point(self):
        d = LinearDemand(base=1.0, slope=1.0, smoothing=1e-2)
        t_star = (d.base - d.smoothing) / d.slope
        eps = 1e-9
        left = d.d_population(t_star - eps)
        right = d.d_population(t_star + eps)
        assert left == pytest.approx(right, rel=1e-5)

    def test_rejects_bad_smoothing(self):
        with pytest.raises(ModelError):
            LinearDemand(base=1.0, slope=1.0, smoothing=2.0)


class TestShiftedPowerDemand:
    def test_heavy_tail_dominates_exponential(self):
        power = ShiftedPowerDemand(alpha=2.0)
        exp = ExponentialDemand(alpha=2.0)
        assert power.population(10.0) > exp.population(10.0)

    def test_bounded_at_negative_prices(self):
        d = ShiftedPowerDemand(alpha=2.0)
        assert d.population(-100.0) == pytest.approx(1.0, rel=1e-6)


class TestScaledDemand:
    def test_scales_population_and_derivative(self):
        from repro.network.demand import ScaledDemand

        base = ExponentialDemand(alpha=2.0)
        scaled = ScaledDemand(base, 0.25)
        assert scaled.population(0.5) == pytest.approx(0.25 * base.population(0.5))
        assert scaled.d_population(0.5) == pytest.approx(
            0.25 * base.d_population(0.5)
        )

    def test_elasticity_is_weight_invariant(self):
        from repro.network.demand import ScaledDemand

        base = LogitDemand(alpha=3.0, midpoint=0.8)
        scaled = ScaledDemand(base, 0.4)
        for t in (-0.5, 0.0, 1.0):
            assert scaled.elasticity(t) == pytest.approx(base.elasticity(t))

    def test_zero_weight_is_an_empty_market_segment(self):
        from repro.network.demand import ScaledDemand

        scaled = ScaledDemand(ExponentialDemand(alpha=1.0), 0.0)
        assert scaled.population(1.0) == 0.0
        assert scaled.d_population(1.0) == 0.0

    def test_rejects_bad_weight(self):
        from repro.network.demand import ScaledDemand

        with pytest.raises(ModelError):
            ScaledDemand(ExponentialDemand(alpha=1.0), -0.1)
        with pytest.raises(ModelError):
            ScaledDemand(ExponentialDemand(alpha=1.0), float("nan"))
