"""Unit tests for repro.network.elasticity (Definition 2)."""

import math

import pytest

from repro.network.elasticity import chain_elasticity, elasticity_of, log_derivative


class TestElasticityOf:
    def test_power_function_has_constant_elasticity(self):
        # y = x^3 has elasticity exactly 3 everywhere.
        for x in (0.5, 1.0, 7.0):
            assert elasticity_of(lambda v: v**3, x) == pytest.approx(3.0, rel=1e-6)

    def test_exponential_family_closed_form(self):
        # m = e^{-2t}: elasticity -2t (the paper's running example).
        assert elasticity_of(lambda t: math.exp(-2.0 * t), 0.75) == pytest.approx(
            -1.5, rel=1e-6
        )

    def test_uses_analytic_derivative_when_given(self):
        value = elasticity_of(
            lambda x: x**2, 3.0, dfunc=lambda x: 2.0 * x
        )
        assert value == pytest.approx(2.0, rel=1e-12)

    def test_zero_at_origin_when_function_nonzero(self):
        assert elasticity_of(lambda x: math.exp(x), 0.0) == 0.0

    def test_infinite_when_function_vanishes(self):
        assert elasticity_of(lambda x: x - 1.0, 1.0, dfunc=lambda x: 1.0) == float(
            "inf"
        )


class TestLogDerivative:
    def test_exponential(self):
        assert log_derivative(lambda x: math.exp(3.0 * x), 0.4) == pytest.approx(
            3.0, rel=1e-6
        )

    def test_sign_conventions_at_zero(self):
        assert log_derivative(lambda x: x, 0.0, dfunc=lambda x: 1.0) == float("inf")
        assert log_derivative(lambda x: -x, 0.0, dfunc=lambda x: -1.0) == float(
            "-inf"
        )


class TestChainElasticity:
    def test_multiplies(self):
        assert chain_elasticity(2.0, -3.0) == -6.0

    def test_zero_dominates_infinity(self):
        # 0 · inf -> 0: a vanishing percentage base kills the chain.
        assert chain_elasticity(0.0, float("inf")) == 0.0
        assert chain_elasticity(float("-inf"), 0.0) == 0.0

    def test_decomposition_matches_paper_equation_14(self):
        # eps^lambda_m = eps^phi_m * eps^lambda_phi for the exponential
        # family on a solved system.
        from repro.network.system import CongestionSystem, TrafficClass
        from repro.network.throughput import ExponentialThroughput
        from repro.network.utilization import LinearUtilization

        system = CongestionSystem(LinearUtilization(), capacity=1.0)
        throughput = ExponentialThroughput(beta=2.0)
        cls = TrafficClass(1.0, throughput)
        state = system.solve([cls])
        phi = state.utilization
        eps_phi_m = (state.rates[0] / state.gap_slope) * (
            state.populations[0] / phi
        )
        eps_lambda_phi = throughput.elasticity(phi)
        # Direct: eps^lambda_m = m * lambda'(phi) / (dg/dphi) per (14).
        direct = (
            state.populations[0] * throughput.d_rate(phi) / state.gap_slope
        )
        assert chain_elasticity(eps_phi_m, eps_lambda_phi) == pytest.approx(
            direct, rel=1e-10
        )
