"""Array-native behavior of the network layer.

Every demand/throughput/utilization family must accept scalar *and* array
arguments, with the array path matching a loop of scalar calls element-wise.
These are the foundations of the batched evaluation stack, so the parity
tolerance is tight (1e-14) and the probes include negative effective prices,
zero and large values.
"""

import numpy as np
import pytest

from repro.network.demand import (
    DemandTable,
    ExponentialDemand,
    LinearDemand,
    LogitDemand,
    ScaledDemand,
    ShiftedPowerDemand,
)
from repro.network.elasticity import chain_elasticity, elasticity_of, log_derivative
from repro.network.throughput import (
    ExponentialThroughput,
    PowerLawThroughput,
    RationalThroughput,
    ThroughputTable,
)
from repro.network.utilization import (
    LinearUtilization,
    MM1Utilization,
    PowerLawUtilization,
)

DEMANDS = [
    ExponentialDemand(alpha=2.0, scale=1.5),
    LogitDemand(alpha=3.0, midpoint=0.8, scale=2.0),
    LinearDemand(base=2.0, slope=1.0, smoothing=1e-3),
    ShiftedPowerDemand(alpha=1.5, scale=1.2),
    ScaledDemand(ExponentialDemand(alpha=1.0), weight=0.5),
]

THROUGHPUTS = [
    ExponentialThroughput(beta=3.0, peak=1.5),
    PowerLawThroughput(beta=2.0, peak=0.7),
    RationalThroughput(beta=4.0, peak=2.0),
]

UTILIZATIONS = [LinearUtilization(), PowerLawUtilization(gamma=2.0), MM1Utilization()]

PRICES = np.array([-2.0, -0.5, 0.0, 0.3, 1.0, 2.5, 10.0, 800.0])
PHIS = np.array([0.0, 0.1, 0.5, 1.0, 3.0, 20.0])


class TestDemandFamilies:
    @pytest.mark.parametrize("demand", DEMANDS, ids=lambda d: type(d).__name__)
    def test_population_matches_scalar_loop(self, demand):
        vector = demand.population(PRICES)
        scalars = [demand.population(float(t)) for t in PRICES]
        np.testing.assert_allclose(vector, scalars, rtol=0, atol=1e-14)

    @pytest.mark.parametrize("demand", DEMANDS, ids=lambda d: type(d).__name__)
    def test_d_population_matches_scalar_loop(self, demand):
        vector = demand.d_population(PRICES)
        scalars = [demand.d_population(float(t)) for t in PRICES]
        np.testing.assert_allclose(vector, scalars, rtol=0, atol=1e-14)

    @pytest.mark.parametrize("demand", DEMANDS, ids=lambda d: type(d).__name__)
    def test_elasticity_matches_scalar_loop(self, demand):
        vector = demand.elasticity(PRICES)
        scalars = [demand.elasticity(float(t)) for t in PRICES]
        np.testing.assert_allclose(vector, scalars, rtol=1e-12, atol=1e-12)

    @pytest.mark.parametrize("demand", DEMANDS, ids=lambda d: type(d).__name__)
    def test_matrix_shapes_broadcast(self, demand):
        matrix = np.tile(PRICES[:4], (3, 1))
        assert demand.population(matrix).shape == (3, 4)

    @pytest.mark.parametrize("demand", DEMANDS, ids=lambda d: type(d).__name__)
    def test_scalar_calls_still_return_floats(self, demand):
        assert isinstance(demand.population(0.7), float)
        assert isinstance(demand.d_population(0.7), float)


class TestThroughputFamilies:
    @pytest.mark.parametrize("fn", THROUGHPUTS, ids=lambda f: type(f).__name__)
    def test_rate_matches_scalar_loop(self, fn):
        np.testing.assert_allclose(
            fn.rate(PHIS), [fn.rate(float(p)) for p in PHIS], rtol=0, atol=1e-14
        )

    @pytest.mark.parametrize("fn", THROUGHPUTS, ids=lambda f: type(f).__name__)
    def test_d_rate_matches_scalar_loop(self, fn):
        np.testing.assert_allclose(
            fn.d_rate(PHIS), [fn.d_rate(float(p)) for p in PHIS], rtol=0, atol=1e-14
        )

    @pytest.mark.parametrize("fn", THROUGHPUTS, ids=lambda f: type(f).__name__)
    def test_elasticity_matches_scalar_loop(self, fn):
        np.testing.assert_allclose(
            fn.elasticity(PHIS),
            [fn.elasticity(float(p)) for p in PHIS],
            rtol=1e-12,
        )

    @pytest.mark.parametrize("fn", THROUGHPUTS, ids=lambda f: type(f).__name__)
    def test_negative_utilization_rejected_in_arrays(self, fn):
        from repro.exceptions import ModelError

        with pytest.raises(ModelError):
            fn.rate(np.array([0.5, -0.1]))


class TestUtilizationFamilies:
    @pytest.mark.parametrize("util", UTILIZATIONS, ids=lambda u: type(u).__name__)
    def test_theta_matches_scalar_loop(self, util):
        mu = 1.7
        np.testing.assert_allclose(
            util.theta(PHIS, mu),
            [util.theta(float(p), mu) for p in PHIS],
            rtol=0,
            atol=1e-14,
        )

    @pytest.mark.parametrize("util", UTILIZATIONS, ids=lambda u: type(u).__name__)
    def test_dtheta_dphi_matches_scalar_loop(self, util):
        mu = 1.7
        np.testing.assert_allclose(
            util.dtheta_dphi(PHIS, mu),
            [util.dtheta_dphi(float(p), mu) for p in PHIS],
            rtol=0,
            atol=1e-14,
        )

    def test_power_law_boundary_limit_in_arrays(self):
        util = PowerLawUtilization(gamma=2.0)
        values = util.dtheta_dphi(np.array([0.0, 1.0]), 1.0)
        assert np.isinf(values[0])
        assert np.isfinite(values[1])


class TestTables:
    def test_demand_table_exponential_fast_path(self):
        demands = [ExponentialDemand(alpha=a, scale=s) for a, s in [(2, 1), (5, 2)]]
        table = DemandTable(demands)
        prices = np.array([[0.5, 1.0], [-0.3, 2.0], [0.0, 0.0]])
        expected = np.column_stack(
            [demands[i].population(prices[:, i]) for i in range(2)]
        )
        np.testing.assert_array_equal(table.populations(prices), expected)
        expected_d = np.column_stack(
            [demands[i].d_population(prices[:, i]) for i in range(2)]
        )
        np.testing.assert_allclose(
            table.d_populations(prices), expected_d, rtol=0, atol=1e-15
        )

    def test_demand_table_generic_path(self):
        demands = [ExponentialDemand(alpha=2.0), LogitDemand(alpha=3.0)]
        table = DemandTable(demands)
        prices = np.array([[0.5, 1.0], [1.5, -0.2]])
        expected = np.column_stack(
            [demands[i].population(prices[:, i]) for i in range(2)]
        )
        np.testing.assert_allclose(table.populations(prices), expected, rtol=1e-15)

    def test_throughput_table_fast_and_generic_agree_shapewise(self):
        fast = ThroughputTable(
            [ExponentialThroughput(beta=2.0), ExponentialThroughput(beta=5.0)]
        )
        generic = ThroughputTable(
            [ExponentialThroughput(beta=2.0), RationalThroughput(beta=5.0)]
        )
        phi = np.array([0.0, 0.4, 1.3])
        assert fast.rates(phi).shape == (3, 2)
        assert generic.rates(phi).shape == (3, 2)

    def test_throughput_table_matches_per_law_calls(self):
        laws = [
            ExponentialThroughput(beta=2.0, peak=1.2),
            ExponentialThroughput(beta=5.0, peak=0.8),
        ]
        table = ThroughputTable(laws)
        phi = np.array([0.0, 0.4, 1.3])
        expected = np.stack([law.rate(phi) for law in laws], axis=1)
        np.testing.assert_array_equal(table.rates(phi), expected)
        expected_d = np.stack([law.d_rate(phi) for law in laws], axis=1)
        np.testing.assert_array_equal(table.d_rates(phi), expected_d)


class TestElasticityHelpers:
    def test_elasticity_of_accepts_arrays(self):
        demand = ExponentialDemand(alpha=2.0)
        xs = np.array([0.0, 0.5, 1.0, 2.0])
        vector = elasticity_of(
            demand.population, xs, dfunc=demand.d_population
        )
        scalars = [
            elasticity_of(demand.population, float(x), dfunc=demand.d_population)
            for x in xs
        ]
        np.testing.assert_allclose(vector, scalars, rtol=1e-12)

    def test_log_derivative_accepts_arrays(self):
        demand = ExponentialDemand(alpha=3.0)
        xs = np.array([0.1, 1.0, 4.0])
        vector = log_derivative(demand.population, xs, dfunc=demand.d_population)
        np.testing.assert_allclose(vector, np.full(3, -3.0), rtol=1e-12)

    def test_chain_elasticity_arrays_with_zero_rule(self):
        a = np.array([0.0, 2.0, -1.0])
        b = np.array([np.inf, 3.0, 4.0])
        np.testing.assert_array_equal(chain_elasticity(a, b), [0.0, 6.0, -4.0])

    def test_chain_elasticity_scalars_unchanged(self):
        assert chain_elasticity(0.0, float("inf")) == 0.0
        assert chain_elasticity(2.0, 3.0) == 6.0
