"""Unit tests for repro.network.sensitivity — Theorems 1 and 2.

Each analytic formula is validated against central finite differences of
freshly re-solved systems, which is the library's standard of proof for the
paper's comparative statics.
"""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.network.demand import ExponentialDemand
from repro.network.sensitivity import (
    price_sensitivity,
    system_sensitivity,
    throughput_increases_with_price,
)
from repro.network.system import CongestionSystem, TrafficClass
from repro.network.throughput import ExponentialThroughput
from repro.network.utilization import LinearUtilization, MM1Utilization

BETAS = (1.0, 3.0, 5.0)
POPULATIONS = (0.8, 1.0, 0.5)


def make_system(capacity=1.0, utilization=None):
    return CongestionSystem(utilization or LinearUtilization(), capacity)


def make_classes():
    return [
        TrafficClass(m, ExponentialThroughput(beta=b))
        for m, b in zip(POPULATIONS, BETAS)
    ]


class TestTheoremOne:
    def test_signs(self):
        system = make_system()
        classes = make_classes()
        sens = system_sensitivity(system, classes)
        assert sens.dphi_dmu < 0.0
        assert np.all(sens.dphi_dm > 0.0)
        assert np.all(sens.dtheta_dmu > 0.0)
        assert np.all(np.diag(sens.dtheta_dm) > 0.0)
        off_diag = sens.dtheta_dm[~np.eye(3, dtype=bool)]
        assert np.all(off_diag < 0.0)

    def test_dphi_dmu_matches_finite_difference(self):
        classes = make_classes()
        h = 1e-6
        phi_hi = make_system(1.0 + h).solve_utilization(classes)
        phi_lo = make_system(1.0 - h).solve_utilization(classes)
        fd = (phi_hi - phi_lo) / (2.0 * h)
        sens = system_sensitivity(make_system(), classes)
        assert sens.dphi_dmu == pytest.approx(fd, rel=1e-5)

    def test_dphi_dm_matches_finite_difference(self):
        system = make_system()
        classes = make_classes()
        sens = system_sensitivity(system, classes)
        h = 1e-7
        for i in range(len(classes)):
            perturbed_hi = list(classes)
            perturbed_lo = list(classes)
            perturbed_hi[i] = classes[i].with_population(POPULATIONS[i] + h)
            perturbed_lo[i] = classes[i].with_population(POPULATIONS[i] - h)
            fd = (
                system.solve_utilization(perturbed_hi)
                - system.solve_utilization(perturbed_lo)
            ) / (2.0 * h)
            assert sens.dphi_dm[i] == pytest.approx(fd, rel=1e-4)

    def test_dtheta_dm_matches_finite_difference(self):
        system = make_system()
        classes = make_classes()
        sens = system_sensitivity(system, classes)
        h = 1e-7
        for j in range(len(classes)):
            hi = list(classes)
            lo = list(classes)
            hi[j] = classes[j].with_population(POPULATIONS[j] + h)
            lo[j] = classes[j].with_population(POPULATIONS[j] - h)
            fd = (system.solve(hi).throughputs - system.solve(lo).throughputs) / (
                2.0 * h
            )
            np.testing.assert_allclose(sens.dtheta_dm[:, j], fd, rtol=1e-4)

    def test_user_effect_proportional_to_rates(self):
        # Equation (4) implies dphi/dm_i : dphi/dm_j = lambda_i : lambda_j.
        system = make_system()
        classes = make_classes()
        state = system.solve(classes)
        sens = system_sensitivity(system, classes, state)
        ratios = sens.dphi_dm / state.rates
        assert np.ptp(ratios) == pytest.approx(0.0, abs=1e-12)

    def test_works_for_mm1_utilization(self):
        system = make_system(utilization=MM1Utilization(), capacity=3.0)
        classes = make_classes()
        sens = system_sensitivity(system, classes)
        assert sens.dphi_dmu < 0.0
        assert np.all(sens.dphi_dm > 0.0)

    def test_rejects_mismatched_state(self):
        system = make_system()
        classes = make_classes()
        state = system.solve(classes[:2])
        with pytest.raises(ModelError):
            system_sensitivity(system, classes, state)


class TestTheoremTwo:
    ALPHAS = (1.0, 3.0, 5.0)

    def make_demands(self):
        return [ExponentialDemand(alpha=a) for a in self.ALPHAS]

    def make_throughputs(self):
        return [ExponentialThroughput(beta=b) for b in BETAS]

    def test_phi_decreases_with_price(self):
        sens = price_sensitivity(
            make_system(), self.make_demands(), self.make_throughputs(), price=1.0
        )
        assert sens.dphi_dp < 0.0
        assert sens.aggregate_dtheta_dp < 0.0

    def test_dphi_dp_matches_finite_difference(self):
        system = make_system()
        demands = self.make_demands()
        throughputs = self.make_throughputs()

        def phi_at(p):
            classes = [
                TrafficClass(d.population(p), t)
                for d, t in zip(demands, throughputs)
            ]
            return system.solve_utilization(classes)

        h = 1e-6
        fd = (phi_at(1.0 + h) - phi_at(1.0 - h)) / (2.0 * h)
        sens = price_sensitivity(system, demands, throughputs, price=1.0)
        assert sens.dphi_dp == pytest.approx(fd, rel=1e-5)

    def test_per_cp_dtheta_dp_matches_finite_difference(self):
        system = make_system()
        demands = self.make_demands()
        throughputs = self.make_throughputs()

        def theta_at(p):
            classes = [
                TrafficClass(d.population(p), t)
                for d, t in zip(demands, throughputs)
            ]
            return system.solve(classes).throughputs

        h = 1e-6
        fd = (theta_at(1.0 + h) - theta_at(1.0 - h)) / (2.0 * h)
        sens = price_sensitivity(system, demands, throughputs, price=1.0)
        np.testing.assert_allclose(sens.dtheta_dp, fd, rtol=1e-4)

    def test_condition_seven_agrees_with_derivative_sign(self):
        # Condition (7) is equivalent to dtheta_i/dp > 0; check both at a
        # price where the a=1, b=5 CP's throughput is still rising.
        system = make_system()
        demands = self.make_demands()
        throughputs = self.make_throughputs()
        price = 0.2
        sens = price_sensitivity(system, demands, throughputs, price)
        classes = [
            TrafficClass(d.population(price), t)
            for d, t in zip(demands, throughputs)
        ]
        phi = system.solve_utilization(classes)
        for i, (demand, throughput) in enumerate(zip(demands, throughputs)):
            predicted = throughput_increases_with_price(
                demand, throughput, price, phi, sens.dphi_dp
            )
            assert predicted == (sens.dtheta_dp[i] > 0.0)

    def test_low_alpha_high_beta_cp_gains_from_price_increase(self):
        # The paper's Figure 5 observation: alpha=1, beta=5 rises initially.
        system = make_system()
        demands = [ExponentialDemand(alpha=1.0), ExponentialDemand(alpha=5.0)]
        throughputs = [
            ExponentialThroughput(beta=5.0),
            ExponentialThroughput(beta=1.0),
        ]
        sens = price_sensitivity(system, demands, throughputs, price=0.1)
        assert sens.dtheta_dp[0] > 0.0  # congestion relief dominates
        assert sens.dtheta_dp[1] < 0.0  # demand loss dominates

    def test_rejects_mismatched_lists(self):
        with pytest.raises(ModelError):
            price_sensitivity(
                make_system(),
                [ExponentialDemand(alpha=1.0)],
                [],
                price=1.0,
            )
