"""Unit tests for repro.network.utilization (Assumption 1 compliance)."""

import pytest

from repro.exceptions import ModelError
from repro.network.utilization import (
    LinearUtilization,
    MM1Utilization,
    PowerLawUtilization,
)
from repro.solvers.differentiation import derivative

ALL_FAMILIES = [
    LinearUtilization(),
    PowerLawUtilization(gamma=0.5),
    PowerLawUtilization(gamma=2.0),
    MM1Utilization(),
]


@pytest.mark.parametrize("family", ALL_FAMILIES, ids=lambda f: repr(f))
class TestAssumptionOne:
    """Every family must satisfy the structural requirements of Assumption 1."""

    def test_phi_vanishes_at_zero_throughput(self, family):
        assert family.phi(0.0, 1.0) == 0.0

    def test_phi_increases_in_throughput(self, family):
        thetas = [0.1, 0.2, 0.4, 0.8]
        mu = 1.0
        values = [family.phi(min(t, 0.9), mu) for t in thetas]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_phi_decreases_in_capacity(self, family):
        assert family.phi(0.5, 1.0) > family.phi(0.5, 2.0)

    def test_theta_inverts_phi(self, family):
        phi = family.phi(0.6, 1.5)
        assert family.theta(phi, 1.5) == pytest.approx(0.6, rel=1e-12)

    def test_dtheta_dphi_matches_finite_difference(self, family):
        phi, mu = 0.7, 1.3
        fd = derivative(lambda x: family.theta(x, mu), phi)
        assert family.dtheta_dphi(phi, mu) == pytest.approx(fd, rel=1e-6)

    def test_dtheta_dmu_matches_finite_difference(self, family):
        phi, mu = 0.7, 1.3
        fd = derivative(lambda m: family.theta(phi, m), mu)
        assert family.dtheta_dmu(phi, mu) == pytest.approx(fd, rel=1e-6)

    def test_rejects_non_positive_capacity(self, family):
        with pytest.raises(ModelError):
            family.phi(0.1, 0.0)
        with pytest.raises(ModelError):
            family.theta(0.1, -1.0)

    def test_rejects_negative_throughput(self, family):
        with pytest.raises(ModelError):
            family.phi(-0.1, 1.0)


class TestLinearUtilization:
    def test_is_per_capacity_throughput(self):
        u = LinearUtilization()
        assert u.phi(0.3, 2.0) == pytest.approx(0.15)
        assert u.theta(0.15, 2.0) == pytest.approx(0.3)

    def test_supply_slope_is_capacity(self):
        # This is the µ term in dg/dφ = µ + Σβ_iθ_i of the paper's example.
        assert LinearUtilization().dtheta_dphi(0.42, 3.0) == 3.0

    def test_unbounded_throughput(self):
        assert LinearUtilization().max_throughput(1.0) == float("inf")


class TestPowerLawUtilization:
    def test_reduces_to_linear_at_gamma_one(self):
        power = PowerLawUtilization(gamma=1.0)
        linear = LinearUtilization()
        assert power.phi(0.3, 1.5) == pytest.approx(linear.phi(0.3, 1.5))

    def test_rejects_bad_gamma(self):
        with pytest.raises(ModelError):
            PowerLawUtilization(gamma=0.0)

    def test_boundary_slope_cases(self):
        assert PowerLawUtilization(gamma=0.5).dtheta_dphi(0.0, 1.0) == 0.0
        assert PowerLawUtilization(gamma=1.0).dtheta_dphi(0.0, 2.0) == 2.0
        assert PowerLawUtilization(gamma=2.0).dtheta_dphi(0.0, 1.0) == float("inf")


class TestMM1Utilization:
    def test_diverges_approaching_capacity(self):
        u = MM1Utilization()
        assert u.phi(0.99, 1.0) > 90.0

    def test_rejects_at_or_above_capacity(self):
        with pytest.raises(ModelError):
            MM1Utilization().phi(1.0, 1.0)

    def test_theta_saturates_below_capacity(self):
        u = MM1Utilization()
        assert u.theta(1e9, 2.0) < 2.0
        assert u.max_throughput(2.0) == 2.0

    def test_matches_queueing_formula(self):
        # rho/(1 - rho) with rho = theta/mu.
        u = MM1Utilization()
        assert u.phi(0.5, 1.0) == pytest.approx(1.0)
        assert u.phi(0.75, 1.0) == pytest.approx(3.0)
