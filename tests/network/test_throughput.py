"""Unit tests for repro.network.throughput (Assumption 1 compliance)."""

import math

import pytest

from repro.exceptions import ModelError
from repro.network.throughput import (
    ExponentialThroughput,
    PowerLawThroughput,
    RationalThroughput,
)
from repro.solvers.differentiation import derivative

ALL_FAMILIES = [
    ExponentialThroughput(beta=3.0),
    ExponentialThroughput(beta=0.5, peak=2.0),
    PowerLawThroughput(beta=2.0),
    RationalThroughput(beta=4.0, peak=1.5),
]


@pytest.mark.parametrize("family", ALL_FAMILIES, ids=lambda f: repr(f))
class TestAssumptionOne:
    def test_strictly_decreasing(self, family):
        phis = [0.0, 0.5, 1.0, 2.0, 5.0]
        rates = [family.rate(phi) for phi in phis]
        assert all(b < a for a, b in zip(rates, rates[1:]))

    def test_vanishes_at_high_utilization(self, family):
        assert family.rate(500.0) < 1e-3 * family.peak_rate()

    def test_derivative_matches_finite_difference(self, family):
        for phi in (0.1, 1.0, 3.0):
            fd = derivative(family.rate, phi)
            assert family.d_rate(phi) == pytest.approx(fd, rel=1e-6)

    def test_elasticity_matches_definition(self, family):
        # Definition 2: eps = (dlambda/dphi) * phi / lambda.
        for phi in (0.2, 1.5):
            expected = family.d_rate(phi) * phi / family.rate(phi)
            assert family.elasticity(phi) == pytest.approx(expected, rel=1e-10)

    def test_elasticity_zero_at_zero_utilization(self, family):
        assert family.elasticity(0.0) == 0.0

    def test_rejects_negative_utilization(self, family):
        with pytest.raises(ModelError):
            family.rate(-0.1)

    def test_peak_rescaling_preserves_elasticity(self, family):
        scaled = family.with_peak(7.0)
        assert scaled.peak_rate() == pytest.approx(7.0)
        assert scaled.elasticity(1.3) == pytest.approx(family.elasticity(1.3))


class TestExponentialThroughput:
    def test_closed_form(self):
        t = ExponentialThroughput(beta=2.0, peak=3.0)
        assert t.rate(0.5) == pytest.approx(3.0 * math.exp(-1.0))

    def test_elasticity_is_minus_beta_phi(self):
        # The paper's closed form used throughout Sections 3-5.
        t = ExponentialThroughput(beta=4.0)
        assert t.elasticity(0.25) == pytest.approx(-1.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ModelError):
            ExponentialThroughput(beta=0.0)
        with pytest.raises(ModelError):
            ExponentialThroughput(beta=1.0, peak=-1.0)


class TestPowerLawThroughput:
    def test_elasticity_saturates_at_minus_beta(self):
        t = PowerLawThroughput(beta=3.0)
        assert t.elasticity(1e6) == pytest.approx(-3.0, rel=1e-5)

    def test_decays_slower_than_exponential(self):
        exp = ExponentialThroughput(beta=3.0)
        power = PowerLawThroughput(beta=3.0)
        assert power.rate(5.0) > exp.rate(5.0)


class TestRationalThroughput:
    def test_closed_form(self):
        t = RationalThroughput(beta=2.0, peak=4.0)
        assert t.rate(1.0) == pytest.approx(4.0 / 3.0)

    def test_halves_at_unit_beta_phi(self):
        t = RationalThroughput(beta=1.0)
        assert t.rate(1.0) == pytest.approx(0.5)
