"""Unit tests for repro.network.aggregation (Lemma 2)."""

import pytest

from repro.exceptions import ModelError
from repro.network.aggregation import (
    aggregate_equivalent_classes,
    elasticity_signature,
    rescale_class,
)
from repro.network.system import CongestionSystem, TrafficClass
from repro.network.throughput import ExponentialThroughput, PowerLawThroughput
from repro.network.utilization import LinearUtilization


def solve_phi(classes, capacity=1.0):
    return CongestionSystem(LinearUtilization(), capacity).solve_utilization(classes)


class TestRescaleClass:
    def test_preserves_utilization(self):
        # Lemma 2: m -> m/kappa with lambda(0) -> kappa*lambda(0) leaves the
        # system fixed point unchanged.
        original = [
            TrafficClass(2.0, ExponentialThroughput(beta=3.0)),
            TrafficClass(1.0, ExponentialThroughput(beta=1.0)),
        ]
        for kappa in (0.5, 2.0, 10.0):
            rescaled = [rescale_class(original[0], kappa), original[1]]
            assert solve_phi(rescaled) == pytest.approx(
                solve_phi(original), abs=1e-11
            )

    def test_preserves_other_cp_throughput(self):
        system = CongestionSystem(LinearUtilization(), 1.0)
        original = [
            TrafficClass(2.0, ExponentialThroughput(beta=3.0)),
            TrafficClass(1.0, ExponentialThroughput(beta=1.0)),
        ]
        base = system.solve(original)
        rescaled = system.solve([rescale_class(original[0], 4.0), original[1]])
        assert rescaled.throughputs[1] == pytest.approx(
            base.throughputs[1], rel=1e-10
        )
        # The rescaled class keeps its *total* throughput too.
        assert rescaled.throughputs[0] == pytest.approx(
            base.throughputs[0], rel=1e-10
        )

    def test_single_big_user_form(self):
        # The paper's remark: any CP can be treated as one big user.
        cls = TrafficClass(5.0, ExponentialThroughput(beta=2.0, peak=0.3))
        big = rescale_class(cls, 5.0)
        assert big.population == pytest.approx(1.0)
        assert big.throughput.peak == pytest.approx(1.5)

    def test_rejects_bad_kappa(self):
        cls = TrafficClass(1.0, ExponentialThroughput(beta=1.0))
        with pytest.raises(ModelError):
            rescale_class(cls, 0.0)


class TestSignature:
    def test_same_family_same_beta_share_signature(self):
        a = TrafficClass(1.0, ExponentialThroughput(beta=2.0, peak=1.0))
        b = TrafficClass(3.0, ExponentialThroughput(beta=2.0, peak=9.0))
        assert elasticity_signature(a) == elasticity_signature(b)

    def test_different_beta_or_family_differ(self):
        a = TrafficClass(1.0, ExponentialThroughput(beta=2.0))
        b = TrafficClass(1.0, ExponentialThroughput(beta=3.0))
        c = TrafficClass(1.0, PowerLawThroughput(beta=2.0))
        assert elasticity_signature(a) != elasticity_signature(b)
        assert elasticity_signature(a) != elasticity_signature(c)


class TestAggregation:
    def test_merging_preserves_utilization(self):
        classes = [
            TrafficClass(1.0, ExponentialThroughput(beta=2.0, peak=0.5)),
            TrafficClass(2.0, ExponentialThroughput(beta=2.0, peak=1.0)),
            TrafficClass(0.5, ExponentialThroughput(beta=4.0)),
        ]
        merged = aggregate_equivalent_classes(classes)
        assert len(merged) == 2
        assert solve_phi(merged) == pytest.approx(solve_phi(classes), abs=1e-11)

    def test_merged_peak_demand_is_sum(self):
        classes = [
            TrafficClass(1.0, ExponentialThroughput(beta=2.0, peak=0.5)),
            TrafficClass(2.0, ExponentialThroughput(beta=2.0, peak=1.0)),
        ]
        merged = aggregate_equivalent_classes(classes)
        assert len(merged) == 1
        assert merged[0].population * merged[0].throughput.peak_rate() == (
            pytest.approx(1.0 * 0.5 + 2.0 * 1.0)
        )

    def test_zero_population_group_survives_as_empty_class(self):
        classes = [TrafficClass(0.0, ExponentialThroughput(beta=1.0))]
        merged = aggregate_equivalent_classes(classes)
        assert len(merged) == 1
        assert merged[0].population == 0.0

    def test_preserves_first_appearance_order(self):
        classes = [
            TrafficClass(1.0, ExponentialThroughput(beta=5.0), label="later"),
            TrafficClass(1.0, ExponentialThroughput(beta=1.0), label="first"),
            TrafficClass(1.0, ExponentialThroughput(beta=5.0), label="later2"),
        ]
        merged = aggregate_equivalent_classes(classes)
        assert [cls.label for cls in merged] == ["later", "first"]
