"""Unit tests for repro.network.system — Definition 1 / Lemma 1."""

import math

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.network.system import CongestionSystem, TrafficClass
from repro.network.throughput import ExponentialThroughput, RationalThroughput
from repro.network.utilization import (
    LinearUtilization,
    MM1Utilization,
    PowerLawUtilization,
)


def unit_system(**kwargs) -> CongestionSystem:
    return CongestionSystem(LinearUtilization(), capacity=1.0, **kwargs)


class TestTrafficClass:
    def test_demand_at_multiplies_population_and_rate(self):
        cls = TrafficClass(2.0, ExponentialThroughput(beta=1.0))
        assert cls.demand_at(0.0) == pytest.approx(2.0)
        assert cls.demand_at(1.0) == pytest.approx(2.0 * math.exp(-1.0))

    def test_rejects_negative_population(self):
        with pytest.raises(ModelError):
            TrafficClass(-1.0, ExponentialThroughput(beta=1.0))

    def test_with_population_copies(self):
        cls = TrafficClass(1.0, ExponentialThroughput(beta=1.0), label="x")
        other = cls.with_population(3.0)
        assert other.population == 3.0
        assert other.label == "x"
        assert cls.population == 1.0


class TestFixedPoint:
    def test_single_class_solves_transcendental_equation(self):
        # phi = e^{-3 phi} for m = mu = 1 (Lambert-W form: 3phi e^{3phi} = 3).
        system = unit_system()
        phi = system.solve_utilization(
            [TrafficClass(1.0, ExponentialThroughput(beta=3.0))]
        )
        assert phi == pytest.approx(math.exp(-3.0 * phi), abs=1e-11)

    def test_definition_one_holds_exactly(self):
        system = CongestionSystem(LinearUtilization(), capacity=2.5)
        classes = [
            TrafficClass(1.2, ExponentialThroughput(beta=2.0)),
            TrafficClass(0.7, RationalThroughput(beta=5.0)),
        ]
        state = system.solve(classes)
        induced = sum(cls.demand_at(state.utilization) for cls in classes)
        assert state.utilization == pytest.approx(
            system.utilization_function.phi(induced, 2.5), abs=1e-10
        )

    def test_empty_or_zero_population_gives_zero_utilization(self):
        system = unit_system()
        assert system.solve_utilization([]) == 0.0
        assert (
            system.solve_utilization(
                [TrafficClass(0.0, ExponentialThroughput(beta=1.0))]
            )
            == 0.0
        )

    def test_gap_is_zero_at_solution(self):
        system = unit_system()
        classes = [TrafficClass(2.0, ExponentialThroughput(beta=1.5))]
        phi = system.solve_utilization(classes)
        assert system.gap(phi, classes) == pytest.approx(0.0, abs=1e-10)

    def test_gap_strictly_increasing(self):
        system = unit_system()
        classes = [TrafficClass(2.0, ExponentialThroughput(beta=1.5))]
        phis = np.linspace(0.0, 3.0, 25)
        gaps = [system.gap(p, classes) for p in phis]
        assert all(b > a for a, b in zip(gaps, gaps[1:]))

    def test_gap_slope_positive_and_matches_closed_form(self):
        # For Phi = theta/mu and exponential throughput:
        # dg/dphi = mu + sum beta_i theta_i.
        system = CongestionSystem(LinearUtilization(), capacity=1.7)
        classes = [
            TrafficClass(1.0, ExponentialThroughput(beta=2.0)),
            TrafficClass(0.5, ExponentialThroughput(beta=4.0)),
        ]
        state = system.solve(classes)
        expected = 1.7 + 2.0 * state.throughputs[0] + 4.0 * state.throughputs[1]
        assert state.gap_slope == pytest.approx(expected, rel=1e-10)

    def test_state_fields_consistent(self):
        system = unit_system()
        classes = [
            TrafficClass(1.0, ExponentialThroughput(beta=1.0), label="a"),
            TrafficClass(2.0, ExponentialThroughput(beta=3.0), label="b"),
        ]
        state = system.solve(classes)
        np.testing.assert_allclose(
            state.throughputs, state.populations * state.rates
        )
        assert state.aggregate_throughput == pytest.approx(
            float(np.sum(state.throughputs))
        )
        assert state.size == 2
        assert state.capacity == 1.0


class TestAcrossUtilizationFamilies:
    @pytest.mark.parametrize(
        "utilization",
        [LinearUtilization(), PowerLawUtilization(gamma=2.0), MM1Utilization()],
        ids=lambda u: repr(u),
    )
    def test_unique_fixed_point_exists(self, utilization):
        system = CongestionSystem(utilization, capacity=2.0)
        classes = [
            TrafficClass(1.5, ExponentialThroughput(beta=2.0)),
            TrafficClass(0.5, ExponentialThroughput(beta=0.5)),
        ]
        phi = system.solve_utilization(classes)
        assert phi > 0.0
        assert system.gap(phi, classes) == pytest.approx(0.0, abs=1e-9)

    def test_mm1_never_exceeds_capacity(self):
        system = CongestionSystem(MM1Utilization(), capacity=1.0)
        # Demand far above capacity: the fixed point throttles throughput.
        classes = [TrafficClass(100.0, ExponentialThroughput(beta=1.0))]
        state = system.solve(classes)
        assert state.aggregate_throughput < 1.0


class TestValidation:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ModelError):
            CongestionSystem(LinearUtilization(), capacity=0.0)

    def test_with_capacity_creates_new_system(self):
        system = unit_system()
        bigger = system.with_capacity(4.0)
        assert bigger.capacity == 4.0
        assert system.capacity == 1.0
