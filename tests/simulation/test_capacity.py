"""Unit tests for repro.simulation.capacity."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.simulation.capacity import simulate_capacity_expansion


class TestCapacityExpansion:
    def test_trajectory_shapes(self, two_cp_market):
        plan = simulate_capacity_expansion(two_cp_market, cap=1.0, periods=5)
        assert plan.periods == 5
        assert plan.capacities.shape == (6,)
        assert plan.revenues.shape == (6,)
        assert plan.subsidies.shape == (6, 2)

    def test_capacity_grows_with_reinvestment(self, two_cp_market):
        plan = simulate_capacity_expansion(
            two_cp_market, cap=1.0, periods=6, reinvestment_rate=0.3
        )
        assert np.all(np.diff(plan.capacities) > 0.0)
        assert plan.capacity_growth() > 0.0

    def test_zero_reinvestment_freezes_capacity(self, two_cp_market):
        plan = simulate_capacity_expansion(
            two_cp_market, cap=1.0, periods=4, reinvestment_rate=0.0
        )
        np.testing.assert_allclose(plan.capacities, plan.capacities[0])

    def test_depreciation_can_shrink_capacity(self, two_cp_market):
        plan = simulate_capacity_expansion(
            two_cp_market,
            cap=0.0,
            periods=4,
            reinvestment_rate=0.0,
            depreciation=0.1,
        )
        assert np.all(np.diff(plan.capacities) < 0.0)

    def test_capacity_relieves_congestion(self, two_cp_market):
        plan = simulate_capacity_expansion(
            two_cp_market, cap=1.0, periods=8, reinvestment_rate=0.4
        )
        # Theorem 1: at fixed price, more capacity means lower utilization.
        assert plan.utilizations[-1] < plan.utilizations[0]

    def test_deregulation_funds_more_capacity(self, four_cp_market):
        # The paper's central investment-incentive claim, end to end.
        regulated = simulate_capacity_expansion(
            four_cp_market, cap=0.0, periods=6, reinvestment_rate=0.3
        )
        deregulated = simulate_capacity_expansion(
            four_cp_market, cap=1.0, periods=6, reinvestment_rate=0.3
        )
        assert deregulated.capacities[-1] > regulated.capacities[-1]

    def test_price_reoptimization_runs(self, two_cp_market):
        plan = simulate_capacity_expansion(
            two_cp_market,
            cap=0.5,
            periods=2,
            reinvestment_rate=0.2,
            reoptimize_price=True,
            price_range=(0.1, 2.0),
        )
        assert np.all(plan.prices >= 0.1)
        assert np.all(plan.prices <= 2.0)

    def test_validation(self, two_cp_market):
        with pytest.raises(ModelError):
            simulate_capacity_expansion(two_cp_market, cap=1.0, periods=-1)
        with pytest.raises(ModelError):
            simulate_capacity_expansion(
                two_cp_market, cap=1.0, periods=1, reinvestment_rate=1.5
            )
        with pytest.raises(ModelError):
            simulate_capacity_expansion(
                two_cp_market, cap=1.0, periods=1, capacity_cost=0.0
            )
        with pytest.raises(ModelError):
            simulate_capacity_expansion(
                two_cp_market, cap=1.0, periods=1, depreciation=1.0
            )
