"""Unit tests for repro.simulation.dynamics — off-equilibrium play."""

import numpy as np
import pytest

from repro.core.equilibrium import solve_equilibrium
from repro.core.game import SubsidizationGame
from repro.exceptions import ModelError
from repro.simulation.agents import (
    BestResponseStrategy,
    FixedStrategy,
    GradientStrategy,
)
from repro.simulation.dynamics import MarketSimulation, SimulationConfig


class TestConfig:
    def test_validates_inertia(self):
        with pytest.raises(ModelError):
            SimulationConfig(population_inertia=0.0)
        with pytest.raises(ModelError):
            SimulationConfig(population_inertia=1.5)

    def test_validates_schedule(self):
        with pytest.raises(ModelError):
            SimulationConfig(update="random")


class TestRunMechanics:
    def test_trace_length_and_steps(self, two_cp_market):
        sim = MarketSimulation(two_cp_market, cap=1.0)
        trace = sim.run(5)
        assert len(trace) == 6
        np.testing.assert_array_equal(trace.steps(), np.arange(6))

    def test_zero_steps_returns_initial_condition_only(self, two_cp_market):
        sim = MarketSimulation(two_cp_market, cap=1.0)
        trace = sim.run(0, initial_subsidies=[0.2, 0.1])
        assert len(trace) == 1
        np.testing.assert_allclose(trace[0].subsidies, [0.2, 0.1])

    def test_rejects_bad_inputs(self, two_cp_market):
        sim = MarketSimulation(two_cp_market, cap=1.0)
        with pytest.raises(ModelError):
            sim.run(-1)
        with pytest.raises(ModelError):
            sim.run(1, initial_subsidies=[0.1])
        with pytest.raises(ModelError):
            sim.run(1, initial_populations=[-1.0, 0.5])

    def test_strategy_count_must_match(self, two_cp_market):
        with pytest.raises(ModelError):
            MarketSimulation(two_cp_market, cap=1.0, strategies=[FixedStrategy(0.1)])

    def test_record_consistency(self, two_cp_market):
        sim = MarketSimulation(two_cp_market, cap=1.0)
        trace = sim.run(3)
        for record in trace:
            assert record.revenue == pytest.approx(
                1.0 * float(np.sum(record.throughputs))
            )
            assert record.welfare == pytest.approx(
                float(np.dot(two_cp_market.values, record.throughputs))
            )


class TestConvergenceToNash:
    def test_best_response_play_converges(self, four_cp_market):
        game = SubsidizationGame(four_cp_market, 1.0)
        equilibrium = solve_equilibrium(game)
        sim = MarketSimulation(four_cp_market, cap=1.0)
        trace = sim.run(25)
        assert trace.distance_to_profile(equilibrium.subsidies)[-1] < 1e-8

    def test_convergence_from_random_start(self, four_cp_market):
        game = SubsidizationGame(four_cp_market, 1.0)
        equilibrium = solve_equilibrium(game)
        rng = np.random.default_rng(7)
        sim = MarketSimulation(four_cp_market, cap=1.0)
        trace = sim.run(30, initial_subsidies=rng.uniform(0.0, 1.0, 4))
        assert trace.distance_to_profile(equilibrium.subsidies)[-1] < 1e-7

    def test_gradient_play_approaches_equilibrium(self, two_cp_market):
        game = SubsidizationGame(two_cp_market, 1.0)
        equilibrium = solve_equilibrium(game)
        sim = MarketSimulation(
            two_cp_market,
            cap=1.0,
            strategies=[GradientStrategy(0.5), GradientStrategy(0.5)],
        )
        trace = sim.run(200)
        assert trace.distance_to_profile(equilibrium.subsidies)[-1] < 1e-3

    def test_population_inertia_slows_but_does_not_break_convergence(
        self, two_cp_market
    ):
        game = SubsidizationGame(two_cp_market, 1.0)
        equilibrium = solve_equilibrium(game)
        sim = MarketSimulation(
            two_cp_market,
            cap=1.0,
            config=SimulationConfig(population_inertia=0.3),
        )
        trace = sim.run(60)
        assert trace.distance_to_profile(equilibrium.subsidies)[-1] < 1e-6
        # Populations lag their demand targets early in the run.
        early = trace[1]
        demand_target = np.array(
            [
                cp.population(1.0 - early.subsidies[i])
                for i, cp in enumerate(two_cp_market.providers)
            ]
        )
        assert not np.allclose(early.populations, demand_target)

    def test_jacobi_schedule_also_converges_here(self, four_cp_market):
        game = SubsidizationGame(four_cp_market, 1.0)
        equilibrium = solve_equilibrium(game)
        sim = MarketSimulation(
            four_cp_market,
            cap=1.0,
            config=SimulationConfig(update="simultaneous"),
        )
        trace = sim.run(40)
        assert trace.distance_to_profile(equilibrium.subsidies)[-1] < 1e-6

    def test_holdout_cp_shifts_the_rest_point(self, four_cp_market):
        # If CP 0 refuses to subsidize, play settles at the best responses
        # to the holdout — not at the Nash equilibrium (where CP 0 would
        # subsidize ~0.38 and the rivals respond to that).
        game = SubsidizationGame(four_cp_market, 1.0)
        nash = solve_equilibrium(game)
        assert nash.subsidies[0] > 0.1
        sim = MarketSimulation(
            four_cp_market,
            cap=1.0,
            strategies=[FixedStrategy(0.0)] + [BestResponseStrategy()] * 3,
        )
        trace = sim.run(25)
        assert trace.final.subsidies[0] == 0.0
        # The congestion relief from CP 0's absence shifts the rivals too.
        rival_shift = np.max(
            np.abs(trace.final.subsidies[1:] - nash.subsidies[1:])
        )
        assert rival_shift > 1e-4


class TestNoiseRobustness:
    def test_noisy_play_stays_near_equilibrium(self, four_cp_market):
        game = SubsidizationGame(four_cp_market, 1.0)
        equilibrium = solve_equilibrium(game)
        sim = MarketSimulation(
            four_cp_market,
            cap=1.0,
            strategies=[BestResponseStrategy(noise=0.01) for _ in range(4)],
            config=SimulationConfig(seed=5),
        )
        trace = sim.run(30)
        tail = trace.distance_to_profile(equilibrium.subsidies)[-10:]
        assert np.max(tail) < 0.1
