"""Unit tests for repro.simulation.agents."""

import numpy as np
import pytest

from repro.core.best_response import best_response
from repro.core.game import SubsidizationGame
from repro.exceptions import ModelError
from repro.simulation.agents import (
    BestResponseStrategy,
    FixedStrategy,
    GradientStrategy,
)

RNG = np.random.default_rng(0)


class TestFixedStrategy:
    def test_always_returns_value(self, two_cp_market):
        game = SubsidizationGame(two_cp_market, 1.0)
        strategy = FixedStrategy(0.3)
        assert strategy.propose(game, 0, np.zeros(2), RNG) == 0.3

    def test_clipped_to_cap(self, two_cp_market):
        game = SubsidizationGame(two_cp_market, 0.2)
        assert FixedStrategy(0.9).propose(game, 0, np.zeros(2), RNG) == 0.2

    def test_rejects_negative(self):
        with pytest.raises(ModelError):
            FixedStrategy(-0.1)


class TestBestResponseStrategy:
    def test_full_damping_matches_exact_best_response(self, two_cp_market):
        game = SubsidizationGame(two_cp_market, 1.0)
        profile = np.array([0.1, 0.2])
        strategy = BestResponseStrategy(damping=1.0)
        assert strategy.propose(game, 0, profile, RNG) == pytest.approx(
            best_response(game, 0, profile)
        )

    def test_partial_damping_moves_halfway(self, two_cp_market):
        game = SubsidizationGame(two_cp_market, 1.0)
        profile = np.array([0.1, 0.2])
        target = best_response(game, 0, profile)
        proposal = BestResponseStrategy(damping=0.5).propose(game, 0, profile, RNG)
        assert proposal == pytest.approx(0.1 + 0.5 * (target - 0.1))

    def test_noise_is_reproducible_with_seeded_rng(self, two_cp_market):
        game = SubsidizationGame(two_cp_market, 1.0)
        profile = np.array([0.1, 0.2])
        strategy = BestResponseStrategy(noise=0.05)
        a = strategy.propose(game, 0, profile, np.random.default_rng(42))
        b = strategy.propose(game, 0, profile, np.random.default_rng(42))
        assert a == b

    def test_noisy_proposal_stays_feasible(self, two_cp_market):
        game = SubsidizationGame(two_cp_market, 0.3)
        strategy = BestResponseStrategy(noise=10.0)
        for seed in range(20):
            proposal = strategy.propose(
                game, 0, np.zeros(2), np.random.default_rng(seed)
            )
            assert 0.0 <= proposal <= 0.3

    def test_validation(self):
        with pytest.raises(ModelError):
            BestResponseStrategy(damping=0.0)
        with pytest.raises(ModelError):
            BestResponseStrategy(noise=-1.0)


class TestGradientStrategy:
    def test_moves_along_marginal_utility(self, two_cp_market):
        game = SubsidizationGame(two_cp_market, 1.0)
        profile = np.array([0.0, 0.0])
        u0 = game.marginal_utility(0, profile)
        proposal = GradientStrategy(learning_rate=0.5).propose(
            game, 0, profile, RNG
        )
        assert proposal == pytest.approx(min(max(0.5 * u0, 0.0), 1.0))

    def test_fixed_point_is_interior_optimum(self, two_cp_market):
        # At the equilibrium, u_i = 0, so gradient play proposes no change.
        from repro.core.equilibrium import solve_equilibrium

        game = SubsidizationGame(two_cp_market, 1.0)
        eq = solve_equilibrium(game)
        for i in range(2):
            proposal = GradientStrategy(learning_rate=1.0).propose(
                game, i, eq.subsidies, RNG
            )
            assert proposal == pytest.approx(eq.subsidies[i], abs=1e-7)

    def test_validation(self):
        with pytest.raises(ModelError):
            GradientStrategy(learning_rate=0.0)
