"""Unit tests for repro.simulation.trace."""

import csv

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.simulation.trace import SimulationTrace, TraceRecord


def make_record(step, s=(0.1, 0.2)):
    s = np.asarray(s, dtype=float)
    return TraceRecord(
        step=step,
        subsidies=s,
        populations=np.array([1.0, 2.0]),
        utilization=0.3,
        throughputs=np.array([0.5, 0.4]),
        utilities=np.array([0.2, 0.1]),
        revenue=0.9,
        welfare=0.7,
    )


class TestSimulationTrace:
    def test_append_enforces_increasing_steps(self):
        trace = SimulationTrace([make_record(0)])
        trace.append(make_record(1))
        with pytest.raises(ModelError):
            trace.append(make_record(1))

    def test_final_raises_on_empty(self):
        with pytest.raises(ModelError):
            SimulationTrace().final

    def test_array_accessors(self):
        trace = SimulationTrace([make_record(0), make_record(1, (0.3, 0.4))])
        assert trace.subsidies().shape == (2, 2)
        assert trace.populations().shape == (2, 2)
        np.testing.assert_array_equal(trace.utilizations(), [0.3, 0.3])
        np.testing.assert_array_equal(trace.revenues(), [0.9, 0.9])
        np.testing.assert_array_equal(trace.welfares(), [0.7, 0.7])

    def test_distance_to_profile(self):
        trace = SimulationTrace([make_record(0), make_record(1, (0.5, 0.2))])
        distances = trace.distance_to_profile([0.5, 0.2])
        assert distances[0] == pytest.approx(0.4)
        assert distances[1] == pytest.approx(0.0)

    def test_indexing_and_iteration(self):
        records = [make_record(0), make_record(1)]
        trace = SimulationTrace(records)
        assert trace[1].step == 1
        assert [r.step for r in trace] == [0, 1]

    def test_to_csv_round_trip(self, tmp_path):
        trace = SimulationTrace([make_record(0), make_record(1)])
        path = tmp_path / "trace.csv"
        trace.to_csv(path, labels=["a", "b"])
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0][:4] == ["step", "utilization", "revenue", "welfare"]
        assert "s_a" in rows[0] and "U_b" in rows[0]
        assert len(rows) == 3

    def test_to_csv_validates_labels(self, tmp_path):
        trace = SimulationTrace([make_record(0)])
        with pytest.raises(ModelError):
            trace.to_csv(tmp_path / "x.csv", labels=["only-one"])

    def test_to_csv_rejects_empty_trace(self, tmp_path):
        with pytest.raises(ModelError):
            SimulationTrace().to_csv(tmp_path / "x.csv")
