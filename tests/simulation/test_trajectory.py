"""The dynamics subsystem: specs, segments, golden parity and resume.

The tentpole guarantees, held exactly:

* a service-backed, segmented trajectory is **bitwise-identical** to the
  straight-line legacy loops (``MarketSimulation.run`` /
  ``simulate_capacity_expansion``), for any segment length;
* a warm persistent store replays a ``T >= 20``-step trajectory with
  **zero** recomputed equilibrium solves (``computed == 0``) and
  byte-identical arrays.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.engine import SolveCache, SolveService, SolveStore
from repro.exceptions import ModelError
from repro.simulation import (
    DYNAMICS_FORMAT,
    DynamicsSpec,
    MarketSimulation,
    Shock,
    SimulationConfig,
    dynamics_settings,
    run_trajectory,
    simulate_capacity_expansion,
    trajectory_segment_task,
)
from repro.simulation.agents import BestResponseStrategy


def fresh_service(store_dir=None) -> SolveService:
    store = SolveStore(store_dir) if store_dir is not None else None
    return SolveService(cache=SolveCache(), store=store)


class TestShock:
    def test_validates_fields(self):
        with pytest.raises(ModelError):
            Shock(step=0, field="capacity", scale=1.1)
        with pytest.raises(ModelError):
            Shock(step=1, field="demand", scale=1.1)
        with pytest.raises(ModelError):
            Shock(step=1, field="price", scale=0.0)
        with pytest.raises(ModelError):
            Shock(step=1, field="price", scale=float("nan"))


class TestDynamicsSpec:
    def test_defaults_are_valid(self):
        spec = DynamicsSpec()
        assert spec.kind == "capacity"
        assert spec.horizon >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kind": "nope"},
            {"horizon": 0},
            {"segment_length": 0},
            {"cap": -1.0},
            {"inertia": 0.0},
            {"update": "random"},
            {"damping": 1.5},
            {"reinvestment_rate": 2.0},
            {"capacity_cost": 0.0},
            {"depreciation": 1.0},
            {"price_range": (2.0, 1.0)},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ModelError):
            DynamicsSpec(**kwargs)

    def test_shock_beyond_horizon_rejected(self):
        with pytest.raises(ModelError):
            DynamicsSpec(horizon=5, shocks=(Shock(6, "price", 0.9),))

    def test_duplicate_shock_rejected(self):
        with pytest.raises(ModelError):
            DynamicsSpec(
                horizon=5,
                shocks=(Shock(3, "price", 0.9), Shock(3, "price", 1.1)),
            )

    def test_shocks_normalized_sorted(self):
        spec = DynamicsSpec(
            horizon=9,
            shocks=(Shock(7, "price", 0.9), Shock(2, "capacity", 1.1)),
        )
        assert [k.step for k in spec.shocks] == [2, 7]

    def test_metadata_round_trip(self):
        spec = DynamicsSpec(
            kind="subsidies",
            horizon=7,
            segment_length=3,
            cap=1.5,
            inertia=0.5,
            update="simultaneous",
            damping=0.8,
            shocks=(Shock(4, "capacity", 0.75),),
        )
        block = spec.to_metadata()
        assert block["format"] == DYNAMICS_FORMAT
        assert DynamicsSpec.from_dict(json.loads(json.dumps(block))) == spec

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(ModelError):
            DynamicsSpec.from_dict("not a mapping")
        with pytest.raises(ModelError):
            DynamicsSpec.from_dict({"format": "repro-dynamics/2"})
        with pytest.raises(ModelError):
            DynamicsSpec.from_dict(
                {"format": DYNAMICS_FORMAT, "unknown_knob": 1}
            )
        with pytest.raises(ModelError):
            DynamicsSpec.from_dict(
                {"format": DYNAMICS_FORMAT, "shocks": [{"step": 1}]}
            )

    def test_from_dict_wraps_unconvertible_values_as_model_error(self):
        # Conversion failures (ValueError, not just TypeError) must come
        # back as ModelError — the documented funnel contract.
        with pytest.raises(ModelError):
            DynamicsSpec.from_dict(
                {"format": DYNAMICS_FORMAT, "horizon": "ten"}
            )
        with pytest.raises(ModelError):
            DynamicsSpec.from_dict(
                {"format": DYNAMICS_FORMAT, "price_range": ["a", "b"]}
            )

    def test_price_shock_under_reoptimization_rejected(self):
        # optimal_price would silently discard the shocked price, so the
        # combination is a spec error, not a quiet no-op.
        with pytest.raises(ModelError, match="no-op"):
            DynamicsSpec(
                kind="capacity",
                reoptimize_price=True,
                shocks=(Shock(3, "price", 0.5),),
            )
        # Capacity shocks (and the subsidies kind) remain fine.
        DynamicsSpec(
            kind="capacity",
            reoptimize_price=True,
            shocks=(Shock(3, "capacity", 0.5),),
        )
        DynamicsSpec(
            kind="subsidies",
            reoptimize_price=True,
            shocks=(Shock(3, "price", 0.5),),
        )

    def test_non_shock_entries_rejected_as_model_error(self):
        with pytest.raises(ModelError):
            DynamicsSpec(shocks=({"step": 1, "field": "price", "scale": 0.9},))
        with pytest.raises(ModelError):
            dynamics_settings(
                overrides={"shocks": [{"step": 1, "field": "price", "scale": 0.9}]}
            )


class TestDynamicsSettings:
    def test_defaults_without_metadata(self):
        assert dynamics_settings() == DynamicsSpec()

    def test_metadata_block_wins_over_defaults(self):
        block = DynamicsSpec(horizon=9).to_metadata()
        assert dynamics_settings({"dynamics": block}).horizon == 9

    def test_overrides_win_over_metadata(self):
        block = DynamicsSpec(horizon=9).to_metadata()
        spec = dynamics_settings(
            {"dynamics": block}, overrides={"horizon": 4, "cap": None}
        )
        assert spec.horizon == 4
        assert spec.cap == DynamicsSpec().cap

    def test_unknown_override_rejected(self):
        with pytest.raises(ModelError):
            dynamics_settings(overrides={"carriers": 3})

    def test_malformed_metadata_rejected(self):
        with pytest.raises(ModelError):
            dynamics_settings({"dynamics": {"format": "wrong"}})


class TestSubsidiesGolden:
    def test_bitwise_identical_to_legacy_loop(self, two_cp_market):
        """Service-backed segments == straight-line MarketSimulation.run."""
        spec = DynamicsSpec(
            kind="subsidies", horizon=8, segment_length=3, cap=1.0
        )
        trajectory = run_trajectory(
            two_cp_market, spec, service=fresh_service()
        )
        legacy = MarketSimulation(two_cp_market, cap=1.0).run(8)
        assert np.array_equal(trajectory.subsidies, legacy.subsidies())
        assert np.array_equal(trajectory.populations, legacy.populations())
        assert np.array_equal(trajectory.utilizations, legacy.utilizations())
        assert np.array_equal(trajectory.throughputs, legacy.throughputs())
        assert np.array_equal(trajectory.utilities, legacy.utilities())
        assert np.array_equal(trajectory.revenues, legacy.revenues())
        assert np.array_equal(trajectory.welfares, legacy.welfares())
        assert trajectory.segments == 3

    def test_damping_and_inertia_match_legacy(self, two_cp_market):
        spec = DynamicsSpec(
            kind="subsidies",
            horizon=5,
            segment_length=2,
            cap=0.8,
            damping=0.6,
            inertia=0.4,
            update="simultaneous",
        )
        trajectory = run_trajectory(
            two_cp_market, spec, service=fresh_service()
        )
        legacy = MarketSimulation(
            two_cp_market,
            cap=0.8,
            strategies=[BestResponseStrategy(damping=0.6) for _ in range(2)],
            config=SimulationConfig(
                population_inertia=0.4, update="simultaneous"
            ),
        ).run(5)
        assert np.array_equal(trajectory.subsidies, legacy.subsidies())
        assert np.array_equal(trajectory.welfares, legacy.welfares())

    def test_initial_conditions_match_legacy(self, two_cp_market):
        spec = DynamicsSpec(
            kind="subsidies", horizon=4, segment_length=4, cap=1.0
        )
        trajectory = run_trajectory(
            two_cp_market,
            spec,
            service=fresh_service(),
            initial_subsidies=[0.3, 0.1],
            initial_populations=[0.2, 0.2],
        )
        legacy = MarketSimulation(two_cp_market, cap=1.0).run(
            4, initial_subsidies=[0.3, 0.1], initial_populations=[0.2, 0.2]
        )
        assert np.array_equal(trajectory.subsidies, legacy.subsidies())
        assert np.array_equal(trajectory.populations, legacy.populations())

    def test_segmentation_is_bitwise_invariant(self, two_cp_market):
        spec = DynamicsSpec(
            kind="subsidies", horizon=6, segment_length=1, cap=1.0
        )
        per_step = run_trajectory(two_cp_market, spec, service=fresh_service())
        whole = run_trajectory(
            two_cp_market,
            dataclasses.replace(spec, segment_length=6),
            service=fresh_service(),
        )
        for name in (
            "subsidies", "populations", "utilizations", "throughputs",
            "utilities", "revenues", "welfares", "capacities", "prices",
        ):
            assert np.array_equal(
                getattr(per_step, name), getattr(whole, name)
            ), name
        assert per_step.segments == 6 and whole.segments == 1


class TestCapacityGolden:
    def test_bitwise_identical_to_legacy_loop(self, two_cp_market):
        """Service-backed segments == simulate_capacity_expansion."""
        spec = DynamicsSpec(
            kind="capacity",
            horizon=6,
            segment_length=2,
            cap=0.5,
            reinvestment_rate=0.3,
            depreciation=0.05,
        )
        trajectory = run_trajectory(
            two_cp_market, spec, service=fresh_service()
        )
        plan = simulate_capacity_expansion(
            two_cp_market, 0.5, 6, reinvestment_rate=0.3, depreciation=0.05
        )
        assert np.array_equal(trajectory.capacities, plan.capacities)
        assert np.array_equal(trajectory.prices, plan.prices)
        assert np.array_equal(trajectory.revenues, plan.revenues)
        assert np.array_equal(trajectory.utilizations, plan.utilizations)
        assert np.array_equal(trajectory.welfares, plan.welfares)
        assert np.array_equal(trajectory.subsidies, plan.subsidies)

    def test_reoptimized_price_matches_legacy(self, two_cp_market):
        spec = DynamicsSpec(
            kind="capacity",
            horizon=2,
            segment_length=1,
            cap=0.5,
            reoptimize_price=True,
            price_range=(0.2, 2.0),
        )
        trajectory = run_trajectory(
            two_cp_market, spec, service=fresh_service()
        )
        plan = simulate_capacity_expansion(
            two_cp_market,
            0.5,
            2,
            reoptimize_price=True,
            price_range=(0.2, 2.0),
        )
        assert np.array_equal(trajectory.prices, plan.prices)
        assert np.array_equal(trajectory.capacities, plan.capacities)

    def test_rejects_initial_state(self, two_cp_market):
        with pytest.raises(ModelError):
            run_trajectory(
                two_cp_market,
                DynamicsSpec(kind="capacity", horizon=2),
                service=fresh_service(),
                initial_subsidies=[0.0, 0.0],
            )


class TestShocks:
    def test_capacity_shock_scales_the_link(self, two_cp_market):
        spec = DynamicsSpec(
            kind="capacity",
            horizon=4,
            segment_length=2,
            cap=0.5,
            shocks=(Shock(3, "capacity", 0.5),),
        )
        shocked = run_trajectory(two_cp_market, spec, service=fresh_service())
        base = run_trajectory(
            two_cp_market,
            dataclasses.replace(spec, shocks=()),
            service=fresh_service(),
        )
        # Identical until the shock lands, halved capacity at step 3.
        assert np.array_equal(shocked.capacities[:3], base.capacities[:3])
        assert shocked.capacities[3] == 0.5 * base.capacities[3]
        assert shocked.revenues[3] != base.revenues[3]

    def test_price_shock_on_subsidies_kind(self, two_cp_market):
        spec = DynamicsSpec(
            kind="subsidies",
            horizon=4,
            segment_length=4,
            cap=1.0,
            shocks=(Shock(2, "price", 1.25),),
        )
        shocked = run_trajectory(two_cp_market, spec, service=fresh_service())
        assert np.all(shocked.prices[:2] == 1.0)
        assert np.all(shocked.prices[2:] == 1.25)
        base = MarketSimulation(two_cp_market, cap=1.0).run(4)
        assert np.array_equal(shocked.welfares[:2], base.welfares()[:2])
        assert not np.array_equal(shocked.welfares[2:], base.welfares()[2:])

    def test_shock_chunking_is_segment_invariant(self, two_cp_market):
        spec = DynamicsSpec(
            kind="subsidies",
            horizon=6,
            segment_length=2,
            cap=1.0,
            shocks=(Shock(3, "capacity", 0.8), Shock(5, "price", 1.1)),
        )
        chunked = run_trajectory(two_cp_market, spec, service=fresh_service())
        whole = run_trajectory(
            two_cp_market,
            dataclasses.replace(spec, segment_length=6),
            service=fresh_service(),
        )
        assert np.array_equal(chunked.welfares, whole.welfares)
        assert np.array_equal(chunked.capacities, whole.capacities)
        assert np.array_equal(chunked.subsidies, whole.subsidies)


class TestWarmStoreResume:
    def test_warm_replay_of_20_step_trajectory_is_solve_free(
        self, two_cp_market, tmp_path
    ):
        """The acceptance claim: T >= 20, warm replay, computed == 0."""
        spec = DynamicsSpec(
            kind="capacity", horizon=20, segment_length=5, cap=0.5
        )
        cold_service = fresh_service(tmp_path)
        cold = run_trajectory(two_cp_market, spec, service=cold_service)
        assert cold_service.counters.computed == 4

        warm_service = fresh_service(tmp_path)  # fresh memory, warm store
        warm = run_trajectory(two_cp_market, spec, service=warm_service)
        assert warm_service.counters.computed == 0
        assert warm_service.counters.store_hits == 4
        for name in (
            "steps", "subsidies", "populations", "utilizations",
            "throughputs", "utilities", "revenues", "welfares",
            "capacities", "prices",
        ):
            assert np.array_equal(getattr(warm, name), getattr(cold, name)), name

    def test_memory_tier_replay_within_one_service(self, two_cp_market):
        spec = DynamicsSpec(kind="subsidies", horizon=4, segment_length=2)
        service = fresh_service()
        run_trajectory(two_cp_market, spec, service=service)
        computed = service.counters.computed
        run_trajectory(two_cp_market, spec, service=service)
        assert service.counters.computed == computed
        assert service.counters.memory_hits >= 2

    def test_spec_change_misses_the_cache(self, two_cp_market, tmp_path):
        service = fresh_service(tmp_path)
        spec = DynamicsSpec(kind="capacity", horizon=4, segment_length=2)
        run_trajectory(two_cp_market, spec, service=service)
        before = service.counters.computed
        run_trajectory(
            two_cp_market,
            dataclasses.replace(spec, cap=1.0),
            service=service,
        )
        assert service.counters.computed > before


class TestTrajectoryObject:
    def test_shape_and_accessors(self, two_cp_market):
        spec = DynamicsSpec(kind="subsidies", horizon=5, segment_length=2)
        trajectory = run_trajectory(
            two_cp_market, spec, service=fresh_service()
        )
        assert trajectory.horizon == 5
        assert trajectory.size == 2
        assert trajectory.steps.tolist() == list(range(6))
        assert trajectory.adoption().shape == (6,)
        assert trajectory.aggregate_throughputs().shape == (6,)

    def test_to_csv(self, two_cp_market, tmp_path):
        spec = DynamicsSpec(kind="capacity", horizon=2, segment_length=2)
        trajectory = run_trajectory(
            two_cp_market, spec, service=fresh_service()
        )
        path = tmp_path / "trajectory.csv"
        trajectory.to_csv(path, labels=two_cp_market.provider_names())
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 4  # header + 3 periods
        assert lines[0].startswith("step,utilization,revenue,welfare,capacity")
        with pytest.raises(ModelError):
            trajectory.to_csv(path, labels=["only-one"])

    def test_task_key_is_content_addressed(self, two_cp_market):
        spec = DynamicsSpec(kind="capacity", horizon=4, segment_length=2)
        s = np.zeros(2)
        m = np.zeros(2)
        task_a = trajectory_segment_task(
            two_cp_market, spec, 0, 2, True, s, m, 1.0, 1.0
        )
        task_b = trajectory_segment_task(
            two_cp_market, spec, 0, 2, True, s, m, 1.0, 1.0
        )
        assert task_a.key == task_b.key
        task_c = trajectory_segment_task(
            two_cp_market, spec, 0, 2, True, s, m, 2.0, 1.0
        )
        assert task_c.key != task_a.key
