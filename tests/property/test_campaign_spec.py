"""Property tests for campaign expansion and serialization.

Hypothesis drives random (but valid) ``repro-campaign/1`` specs through
the invariants the warehouse manifest depends on:

* expansion is a pure function of the spec — re-expanding an equal spec
  (including one rebuilt from its own serialization) reproduces the row
  matrix bitwise, digests included;
* no two rows of one campaign ever share a scenario digest or a row
  digest — resume-by-digest would silently drop work otherwise;
* ``to_dict``/``from_dict`` round-trips a spec exactly, and the campaign
  digest survives the trip.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaigns import CampaignSpec
from repro.io import campaign_from_dict, campaign_to_dict

#: Small axis pools over real random_market parameters; values are kept
#: tiny so expansion (which builds every scenario) stays cheap.
_AXES = st.fixed_dictionaries(
    {},
    optional={
        "n_types": st.sampled_from([(3, 4), (3, 4, 5), (4, 6)]),
        "capacity": st.sampled_from([(0.5, 1.0), (1.0, 2.0)]),
        "price": st.sampled_from([(0.5, 1.5), (1.0, 2.0)]),
    },
)

_PRODUCT = st.builds(
    dict,
    sampling=st.just("product"),
    seed_count=st.integers(min_value=1, max_value=3),
)
_SAMPLED = st.builds(
    dict,
    sampling=st.just("sampled"),
    n_samples=st.integers(min_value=1, max_value=6),
    sample_seed=st.integers(min_value=0, max_value=2**32 - 1),
)

_SPECS = st.builds(
    lambda axes, seed_start, mode, cid: CampaignSpec(
        campaign_id=cid,
        generator="random_market",
        sweep="price",
        seed_start=seed_start,
        axes=axes,
        base_params={"prices": [0.8, 1.2]},
        **mode,
    ),
    axes=_AXES,
    seed_start=st.integers(min_value=0, max_value=50),
    mode=st.one_of(_PRODUCT, _SAMPLED),
    cid=st.sampled_from(["prop-a", "prop-b"]),
)


def _matrix(spec: CampaignSpec) -> list[tuple]:
    """The observable identity of every expanded row."""
    return [
        (
            row.index,
            row.seed,
            row.params,
            row.sweep,
            row.scenario_digest,
            row.digest,
        )
        for row in spec.expand()
    ]


@settings(max_examples=40, deadline=None)
@given(spec=_SPECS)
def test_expansion_is_bitwise_reproducible(spec):
    assert _matrix(spec) == _matrix(spec)


@settings(max_examples=40, deadline=None)
@given(spec=_SPECS)
def test_no_duplicate_digests(spec):
    rows = spec.expand()
    scenario_digests = [row.scenario_digest for row in rows]
    row_digests = [row.digest for row in rows]
    assert len(set(scenario_digests)) == len(rows)
    assert len(set(row_digests)) == len(rows)


@settings(max_examples=40, deadline=None)
@given(spec=_SPECS)
def test_serialization_round_trips_exactly(spec):
    payload = campaign_to_dict(spec)
    clone = campaign_from_dict(payload)
    assert clone == spec
    assert clone.digest() == spec.digest()
    # Serialization is stable: a second render is byte-equal.
    assert campaign_to_dict(clone) == payload
    # The rebuilt spec expands to the same row matrix, digests included.
    assert _matrix(clone) == _matrix(spec)
