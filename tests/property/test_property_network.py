"""Property-based tests (hypothesis) on the physical substrate.

These encode the paper's structural assumptions and Lemma 1/Theorem 1 as
universally-quantified properties over random model parameters.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.demand import ExponentialDemand, LogitDemand
from repro.network.system import CongestionSystem, TrafficClass
from repro.network.throughput import (
    ExponentialThroughput,
    PowerLawThroughput,
    RationalThroughput,
)
from repro.network.utilization import LinearUtilization, PowerLawUtilization

# Keep parameters in well-conditioned ranges: the model is macroscopic and
# the paper's own instances live well inside these.
betas = st.floats(0.1, 10.0, allow_nan=False, allow_infinity=False)
alphas = st.floats(0.1, 10.0, allow_nan=False, allow_infinity=False)
populations = st.floats(0.0, 20.0, allow_nan=False, allow_infinity=False)
capacities = st.floats(0.05, 50.0, allow_nan=False, allow_infinity=False)
prices = st.floats(-1.0, 10.0, allow_nan=False, allow_infinity=False)
utilizations = st.floats(0.0, 30.0, allow_nan=False, allow_infinity=False)


@st.composite
def traffic_classes(draw, min_size=1, max_size=5):
    """Random lists of traffic classes over the three throughput families."""
    size = draw(st.integers(min_size, max_size))
    classes = []
    for _ in range(size):
        family = draw(st.sampled_from(["exp", "power", "rational"]))
        beta = draw(betas)
        population = draw(populations)
        if family == "exp":
            throughput = ExponentialThroughput(beta=beta)
        elif family == "power":
            throughput = PowerLawThroughput(beta=beta)
        else:
            throughput = RationalThroughput(beta=beta)
        classes.append(TrafficClass(population, throughput))
    return classes


class TestThroughputFamilies:
    @given(beta=betas, phi=utilizations)
    def test_exponential_rate_positive_and_bounded(self, beta, phi):
        t = ExponentialThroughput(beta=beta)
        assert 0.0 < t.rate(phi) <= t.peak_rate()

    @given(beta=betas, phi=utilizations)
    def test_derivative_is_negative(self, beta, phi):
        for family in (
            ExponentialThroughput(beta=beta),
            PowerLawThroughput(beta=beta),
            RationalThroughput(beta=beta),
        ):
            assert family.d_rate(phi) < 0.0

    @given(beta=betas, phi=st.floats(0.001, 30.0))
    def test_elasticity_is_negative_at_positive_utilization(self, beta, phi):
        for family in (
            ExponentialThroughput(beta=beta),
            PowerLawThroughput(beta=beta),
            RationalThroughput(beta=beta),
        ):
            assert family.elasticity(phi) < 0.0


class TestDemandFamilies:
    @given(alpha=alphas, t1=prices, t2=prices)
    def test_exponential_demand_monotone(self, alpha, t1, t2):
        d = ExponentialDemand(alpha=alpha)
        lo, hi = sorted((t1, t2))
        assert d.population(hi) <= d.population(lo)

    @given(alpha=alphas, t=prices)
    def test_logit_demand_bounded_by_scale(self, alpha, t):
        d = LogitDemand(alpha=alpha, midpoint=1.0, scale=2.0)
        assert 0.0 <= d.population(t) <= 2.0


class TestCongestionFixedPoint:
    @given(classes=traffic_classes(), mu=capacities)
    @settings(max_examples=60, deadline=None)
    def test_fixed_point_exists_and_satisfies_definition(self, classes, mu):
        system = CongestionSystem(LinearUtilization(), mu)
        phi = system.solve_utilization(classes)
        assert phi >= 0.0
        induced = sum(cls.demand_at(phi) for cls in classes)
        assert phi == pytest.approx(induced / mu, abs=1e-8)

    @given(classes=traffic_classes(), mu=capacities)
    @settings(max_examples=60, deadline=None)
    def test_gap_slope_positive_at_solution(self, classes, mu):
        system = CongestionSystem(LinearUtilization(), mu)
        state = system.solve(classes)
        assert state.gap_slope > 0.0

    @given(classes=traffic_classes(), mu=capacities)
    @settings(max_examples=40, deadline=None)
    def test_capacity_monotonicity(self, classes, mu):
        # Theorem 1 as a global property: more capacity, less utilization.
        small = CongestionSystem(LinearUtilization(), mu)
        large = CongestionSystem(LinearUtilization(), mu * 2.0)
        assert large.solve_utilization(classes) <= small.solve_utilization(
            classes
        ) + 1e-12

    @given(classes=traffic_classes(min_size=2), mu=capacities)
    @settings(max_examples=40, deadline=None)
    def test_population_monotonicity(self, classes, mu):
        # Theorem 1: growing one class's population never lowers phi.
        system = CongestionSystem(LinearUtilization(), mu)
        phi = system.solve_utilization(classes)
        grown = [classes[0].with_population(classes[0].population + 1.0)]
        grown.extend(classes[1:])
        assert system.solve_utilization(grown) >= phi - 1e-12

    @given(classes=traffic_classes(), mu=capacities, gamma=st.floats(0.5, 3.0))
    @settings(max_examples=40, deadline=None)
    def test_power_law_utilization_also_has_fixed_point(
        self, classes, mu, gamma
    ):
        # For gamma > 1 and near-zero demand the root collapses toward 0
        # faster than any absolute xtol resolves (phi* ~ demand^gamma);
        # restrict to non-degenerate demand, the regime the model is about.
        from hypothesis import assume

        total_peak = sum(cls.population * cls.throughput.peak_rate()
                         for cls in classes)
        assume(total_peak >= 1e-2)
        system = CongestionSystem(PowerLawUtilization(gamma=gamma), mu)
        phi = system.solve_utilization(classes)
        induced = sum(cls.demand_at(phi) for cls in classes)
        # Scale-aware check in throughput space.
        assert system.utilization_function.theta(phi, mu) == pytest.approx(
            induced, rel=1e-6, abs=1e-9
        )
