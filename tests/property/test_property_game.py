"""Property-based tests (hypothesis) on the subsidization game.

Random markets from the paper's exponential family; the properties are the
game-theoretic invariants of §4 (feasibility, Lemma 3 monotonicity, KKT
certification, value bounds).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.best_response import best_response
from repro.core.equilibrium import solve_equilibrium
from repro.core.game import SubsidizationGame
from repro.providers import AccessISP, Market, exponential_cp

alphas = st.floats(0.5, 6.0)
betas = st.floats(0.5, 6.0)
values = st.floats(0.0, 1.5)
prices = st.floats(0.1, 2.0)
caps = st.floats(0.05, 2.0)


@st.composite
def markets(draw, min_size=1, max_size=4):
    size = draw(st.integers(min_size, max_size))
    providers = [
        exponential_cp(draw(alphas), draw(betas), value=draw(values))
        for _ in range(size)
    ]
    return Market(providers, AccessISP(price=draw(prices), capacity=1.0))


@st.composite
def games(draw, **market_kwargs):
    return SubsidizationGame(draw(markets(**market_kwargs)), draw(caps))


class TestBestResponseProperties:
    @given(game=games())
    @settings(max_examples=30, deadline=None)
    def test_response_feasible_and_value_bounded(self, game):
        profile = np.zeros(game.size)
        for i in range(game.size):
            response = best_response(game, i, profile)
            assert 0.0 <= response <= game.cap + 1e-12
            assert response <= game.market.providers[i].value + 1e-9

    @given(game=games(min_size=2, max_size=3), data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_response_is_optimal_on_a_grid(self, game, data):
        i = data.draw(st.integers(0, game.size - 1))
        profile = np.array(
            [
                data.draw(st.floats(0.0, float(game.cap)))
                for _ in range(game.size)
            ]
        )
        response = best_response(game, i, profile)
        trial = profile.copy()
        trial[i] = response
        best_value = game.utility(i, trial)
        for s in np.linspace(0.0, game.cap, 33):
            trial[i] = s
            assert game.utility(i, trial) <= best_value + 1e-8


class TestLemma3Property:
    @given(game=games(min_size=2, max_size=4), data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_unilateral_subsidy_monotonicity(self, game, data):
        i = data.draw(st.integers(0, game.size - 1))
        base = np.array(
            [
                data.draw(st.floats(0.0, float(game.cap) / 2.0))
                for _ in range(game.size)
            ]
        )
        bumped = base.copy()
        bumped[i] = base[i] + game.cap / 2.0
        lo, hi = game.state(base), game.state(bumped)
        assert hi.utilization >= lo.utilization - 1e-12
        assert hi.throughputs[i] >= lo.throughputs[i] - 1e-12
        for j in range(game.size):
            if j != i:
                assert hi.throughputs[j] <= lo.throughputs[j] + 1e-12


class TestEquilibriumProperties:
    @given(game=games(max_size=3))
    @settings(max_examples=20, deadline=None)
    def test_solver_always_certifies(self, game):
        eq = solve_equilibrium(game)
        assert eq.kkt_residual <= 1e-7
        assert np.all(eq.subsidies >= -1e-12)
        assert np.all(eq.subsidies <= game.cap + 1e-9)

    @given(game=games(max_size=3))
    @settings(max_examples=15, deadline=None)
    def test_equilibrium_utilities_non_negative(self, game):
        # Playing 0 guarantees U_i >= 0, so no equilibrium can leave a CP
        # with negative utility.
        eq = solve_equilibrium(game)
        assert np.all(eq.state.utilities >= -1e-9)

    @given(game=games(max_size=3))
    @settings(max_examples=15, deadline=None)
    def test_deregulated_revenue_dominates_regulated(self, game):
        base = game.market.solve().revenue
        assert solve_equilibrium(game).state.revenue >= base - 1e-9
