"""Property-based tests (hypothesis) on the numerical substrate."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.solvers.fixed_point import damped_fixed_point
from repro.solvers.projection import project_box
from repro.solvers.rootfind import solve_increasing
from repro.solvers.scalar_opt import golden_section_maximize

finite = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)


class TestRootfindProperties:
    @given(
        slope=st.floats(0.01, 100.0),
        root=st.floats(0.0, 1e3),
    )
    def test_recovers_linear_roots(self, slope, root):
        found = solve_increasing(lambda x: slope * (x - root))
        assert found == pytest.approx(root, rel=1e-8, abs=1e-9)

    @given(a=st.floats(0.1, 5.0), b=st.floats(0.1, 5.0))
    def test_congestion_equation_family(self, a, b):
        # phi = a * e^{-b phi} always has a unique root; residual must be 0.
        phi = solve_increasing(lambda x: x - a * math.exp(-b * x))
        assert phi == pytest.approx(a * math.exp(-b * phi), abs=1e-9)


class TestProjectionProperties:
    @given(
        x=npst.arrays(float, st.integers(1, 6), elements=finite),
        lo=st.floats(-100.0, 0.0),
        width=st.floats(0.0, 100.0),
    )
    def test_projection_lands_in_box_and_is_idempotent(self, x, lo, width):
        hi = lo + width
        projected = project_box(x, lo, hi)
        assert np.all(projected >= lo) and np.all(projected <= hi)
        np.testing.assert_array_equal(project_box(projected, lo, hi), projected)

    @given(
        x=npst.arrays(float, 4, elements=finite),
        y=npst.arrays(float, 4, elements=finite),
    )
    def test_projection_is_non_expansive(self, x, y):
        px = project_box(x, -1.0, 1.0)
        py = project_box(y, -1.0, 1.0)
        assert np.linalg.norm(px - py) <= np.linalg.norm(x - y) + 1e-9


class TestFixedPointProperties:
    @given(
        factor=st.floats(0.0, 0.9),
        target=st.floats(-100.0, 100.0),
    )
    @settings(max_examples=50)
    def test_converges_for_any_contraction_factor(self, factor, target):
        mapping = lambda x: target + factor * (x - target)  # noqa: E731
        result = damped_fixed_point(mapping, np.array([0.0]), tol=1e-12)
        assert result.x[0] == pytest.approx(target, abs=1e-8)


class TestGoldenSectionProperties:
    @given(
        peak=st.floats(-5.0, 5.0),
        curvature=st.floats(0.1, 50.0),
        lo=st.floats(-10.0, -6.0),
        hi=st.floats(6.0, 10.0),
    )
    def test_finds_peak_of_any_concave_parabola(self, peak, curvature, lo, hi):
        result = golden_section_maximize(
            lambda x: -curvature * (x - peak) ** 2, lo, hi
        )
        assert result.x == pytest.approx(peak, abs=1e-7)
