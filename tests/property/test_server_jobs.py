"""Property tests for the serve daemon's job lifecycle.

Hypothesis drives random sequences of submit / pump / cancel /
duplicate-submit against a pump-mode :class:`JobManager` (no worker
threads: every transition happens inside the test, so the model is
exact). Invariants checked after every operation:

* duplicate submits of a live-or-done scenario coalesce to one job —
  distinct digests never share one, and a digest never has two live jobs;
* terminal states are sticky — once ``done``/``failed``/``cancelled``,
  a job's state and result never change again;
* stats counters are monotone, and the event counters reconcile with
  the states actually observed.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.providers import AccessISP, Market, exponential_cp
from repro.scenarios.spec import ScenarioSpec
from repro.server.jobs import TERMINAL_STATES, JobManager

#: A tiny pool of distinct scenarios; reusing ids across operations is
#: exactly what exercises coalescing.
_SCENARIO_IDS = ("prop-a", "prop-b", "prop-c")

_COUNTERS = (
    "submitted",
    "coalesced",
    "started",
    "completed",
    "failed",
    "cancelled",
)


def _scenario(sid: str) -> ScenarioSpec:
    market = Market(
        [exponential_cp(2.0, 2.0, value=1.0)],
        AccessISP(price=1.0, capacity=1.0),
    )
    return ScenarioSpec(
        scenario_id=sid,
        title=f"property scenario {sid}",
        market=market,
        prices=(1.0,),
        policy_levels=(0.0,),
    )


_SCENARIOS = {sid: _scenario(sid) for sid in _SCENARIO_IDS}


def _runner(scn, service):
    if scn.scenario_id == "prop-c":  # one scenario always fails
        raise RuntimeError("prop-c always fails")
    return {"solved": scn.scenario_id}


# Operations: ("submit", sid) | ("pump",) | ("cancel", job_offset)
_OPS = st.one_of(
    st.tuples(st.just("submit"), st.sampled_from(_SCENARIO_IDS)),
    st.tuples(st.just("pump")),
    st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=5)),
)


class _Model:
    """Shadow bookkeeping rebuilt from the manager's observable outputs."""

    def __init__(self, manager: JobManager) -> None:
        self.manager = manager
        self.jobs = []  # submission order
        self.frozen = {}  # job_id -> (state, result, error) at terminal
        self.last_stats = manager.stats()

    def check(self) -> None:
        stats = self.manager.stats()
        # Counters only ever grow.
        for name in _COUNTERS:
            assert stats[name] >= self.last_stats[name], name
        # Events reconcile with observed job states.
        states = [job.state for job in self.jobs]
        assert stats["submitted"] - stats["coalesced"] == len(self.jobs)
        assert stats["completed"] == states.count("done")
        assert stats["failed"] == states.count("failed")
        assert stats["cancelled"] == states.count("cancelled")
        assert stats["jobs"] == len(self.jobs)
        # Terminal states (and their payloads) are sticky.
        for job in self.jobs:
            if job.job_id in self.frozen:
                assert (
                    job.state,
                    job.result,
                    job.error,
                ) == self.frozen[job.job_id]
            elif job.state in TERMINAL_STATES:
                self.frozen[job.job_id] = (job.state, job.result, job.error)
        # A digest never has two live (non-terminal) jobs.
        live = [
            job.digest
            for job in self.jobs
            if job.state not in TERMINAL_STATES
        ]
        assert len(live) == len(set(live))
        self.last_stats = stats

    # ------------------------------------------------------------------
    def submit(self, sid: str) -> None:
        before = {
            job.digest: job
            for job in self.jobs
            if job.state in ("queued", "running", "done")
        }
        job, coalesced = self.manager.submit(_SCENARIOS[sid])
        if job.digest in before:
            # Live-or-done digest: must coalesce to that very job.
            assert coalesced and job is before[job.digest]
        else:
            assert not coalesced
            self.jobs.append(job)

    def pump(self) -> None:
        self.manager.pump()

    def cancel(self, offset: int) -> None:
        if not self.jobs:
            return
        job = self.jobs[offset % len(self.jobs)]
        was_terminal = job.state in TERMINAL_STATES
        was = job.state
        result = self.manager.cancel(job.job_id)
        assert result is job
        if was_terminal:
            assert job.state == was  # sticky: cancel cannot re-transition
        else:
            assert job.state == "cancelled"


@settings(max_examples=60, deadline=None)
@given(ops=st.lists(_OPS, max_size=40))
def test_random_lifecycle_sequences(ops):
    manager = JobManager(runner=_runner, workers=0)
    model = _Model(manager)
    try:
        for op in ops:
            getattr(model, op[0])(*op[1:])
            model.check()
        # Drain: after enough pumps every job is terminal and the
        # invariants still hold.
        while manager.pump():
            model.check()
        model.check()
        for job in model.jobs:
            assert job.state in TERMINAL_STATES or job.state == "queued"
    finally:
        manager.close()


@settings(max_examples=30, deadline=None)
@given(
    sids=st.lists(st.sampled_from(_SCENARIO_IDS), min_size=1, max_size=12)
)
def test_duplicate_submits_coalesce_to_one_solve_each(sids):
    """However submits interleave, each distinct scenario runs at most
    once while its job stays live-or-done."""
    runs = []

    def counting_runner(scn, service):
        runs.append(scn.scenario_id)
        return {"ok": scn.scenario_id}

    manager = JobManager(runner=counting_runner, workers=0)
    try:
        for sid in sids:
            manager.submit(_SCENARIOS[sid])
        while manager.pump():
            pass
        assert sorted(runs) == sorted(set(sids))
        stats = manager.stats()
        assert stats["submitted"] == len(sids)
        assert stats["coalesced"] == len(sids) - len(set(sids))
        assert stats["completed"] == len(set(sids))
    finally:
        manager.close()
