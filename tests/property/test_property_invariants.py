"""Property-based tests on cross-module invariants.

Randomized markets from the paper's family; the properties tie together
serialization, the Theorem 3 characterization and the independent Nash
solvers.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.characterization import thresholds
from repro.core.equilibrium import solve_equilibrium
from repro.core.game import SubsidizationGame
from repro.core.newton import solve_equilibrium_newton
from repro.exceptions import ConvergenceError
from repro.io import market_from_dict, market_to_dict
from repro.providers import AccessISP, Market, exponential_cp

alphas = st.floats(0.5, 6.0)
betas = st.floats(0.5, 6.0)
values = st.floats(0.0, 1.5)
prices = st.floats(0.1, 2.0)
caps = st.floats(0.05, 2.0)


@st.composite
def markets(draw, min_size=1, max_size=4):
    size = draw(st.integers(min_size, max_size))
    providers = [
        exponential_cp(draw(alphas), draw(betas), value=draw(values))
        for _ in range(size)
    ]
    return Market(providers, AccessISP(price=draw(prices), capacity=1.0))


class TestSerializationProperties:
    @given(market=markets(), s_seed=st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_round_trip_preserves_solved_states(self, market, s_seed):
        rebuilt = market_from_dict(market_to_dict(market))
        rng = np.random.default_rng(s_seed)
        s = rng.uniform(0.0, 0.5, market.size)
        original = market.solve(s)
        copy = rebuilt.solve(s)
        assert copy.utilization == original.utilization
        np.testing.assert_array_equal(copy.throughputs, original.throughputs)
        np.testing.assert_array_equal(copy.utilities, original.utilities)


class TestTheoremThreeProperty:
    @given(market=markets(max_size=3), cap=caps)
    @settings(max_examples=15, deadline=None)
    def test_threshold_equation_holds_at_every_solved_equilibrium(
        self, market, cap
    ):
        game = SubsidizationGame(market, cap)
        eq = solve_equilibrium(game)
        tau = thresholds(game, eq.subsidies)
        np.testing.assert_allclose(
            eq.subsidies, np.minimum(tau, cap), atol=1e-6
        )


class TestSolverAgreementProperty:
    @given(market=markets(max_size=3), cap=caps)
    @settings(max_examples=12, deadline=None)
    def test_newton_agrees_with_certified_solver(self, market, cap):
        game = SubsidizationGame(market, cap)
        reference = solve_equilibrium(game)
        try:
            newton = solve_equilibrium_newton(game)
        except ConvergenceError:
            # Newton's basin can exclude extreme random instances; the
            # certified front-end remains the robust path there.
            return
        np.testing.assert_allclose(
            newton.subsidies, reference.subsidies, atol=1e-6
        )
