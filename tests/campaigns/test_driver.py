"""run_campaign: cold runs, resume, warm replay, per-sweep metrics."""

import numpy as np
import pytest

from repro.campaigns import (
    SWEEP_METRICS,
    CampaignSpec,
    CampaignWarehouse,
    campaign_status,
    run_campaign,
    warehouse_for_service,
)
from repro.engine import SolveCache, SolveService, SolveStore


def price_spec(**overrides) -> CampaignSpec:
    fields = dict(
        campaign_id="drv",
        generator="random_market",
        sweep="price",
        seed_count=3,
        axes={"n_types": (4, 6)},
        base_params={"prices": [0.8, 1.2]},
    )
    fields.update(overrides)
    return CampaignSpec(**fields)


def store_service(tmp_path) -> SolveService:
    return SolveService(
        cache=SolveCache(), store=SolveStore(tmp_path / "store")
    )


class TestLifecycle:
    def test_cold_run_lands_every_row(self, tmp_path):
        spec = price_spec()
        service = store_service(tmp_path)
        with warehouse_for_service(service) as wh:
            report = run_campaign(spec, service=service, warehouse=wh)
            assert report.rows_total == 6
            assert report.rows_computed == 6
            assert report.rows_resumed == 0
            assert report.solves_computed > 0
            assert wh.count(spec.digest()) == 6
            assert wh.incomplete_rows(spec.digest()) == []
            assert set(wh.metric_names(spec.digest())) == set(
                SWEEP_METRICS["price"]
            )

    def test_rerun_resumes_everything(self, tmp_path):
        spec = price_spec()
        service = store_service(tmp_path)
        with warehouse_for_service(service) as wh:
            run_campaign(spec, service=service, warehouse=wh)
            report = run_campaign(spec, service=service, warehouse=wh)
            assert report.rows_computed == 0
            assert report.rows_resumed == 6
            assert report.solves_computed == 0
            assert wh.count(spec.digest()) == 6

    def test_partial_warehouse_computes_only_the_complement(self, tmp_path):
        spec = price_spec()
        service = store_service(tmp_path)
        rows = spec.expand()
        with warehouse_for_service(service) as wh:
            run_campaign(spec, service=service, warehouse=wh)
            # Simulate a killed run: drop half the landed rows.
            keep = {row.digest for row in rows[:3]}
            for row in rows[3:]:  # test-only surgery on the manifest
                wh._conn.execute(
                    "DELETE FROM rows WHERE digest = ?", (row.digest,)
                )
                wh._conn.execute(
                    "DELETE FROM metrics WHERE digest = ?", (row.digest,)
                )
            wh._conn.commit()
            assert wh.existing_digests(spec.digest()) == keep
            report = run_campaign(spec, service=service, warehouse=wh)
            assert report.rows_computed == 3
            assert report.rows_resumed == 3
            # The recomputed rows were warm in the store: zero solves.
            assert report.solves_computed == 0

    def test_warm_full_replay_into_fresh_warehouse_is_solve_free(
        self, tmp_path
    ):
        spec = price_spec()
        service = store_service(tmp_path)
        run_campaign(
            spec, service=service, warehouse=CampaignWarehouse(":memory:")
        )
        # New process, new warehouse, same persistent store: every row
        # recomputes, no row solves.
        fresh = store_service(tmp_path)
        report = run_campaign(
            spec, service=fresh, warehouse=CampaignWarehouse(":memory:")
        )
        assert report.rows_computed == 6
        assert report.solves_computed == 0

    def test_progress_callback_sees_every_row(self, tmp_path):
        spec = price_spec(seed_count=1)
        service = store_service(tmp_path)
        seen = []
        run_campaign(
            spec,
            service=service,
            warehouse=CampaignWarehouse(":memory:"),
            progress=lambda done, total, row: seen.append((done, total)),
        )
        assert seen == [(1, 2), (2, 2)]

    def test_status_reports_the_complement(self, tmp_path):
        spec = price_spec()
        service = store_service(tmp_path)
        with warehouse_for_service(service) as wh:
            status = campaign_status(spec, wh)
            assert status["rows_total"] == 6
            assert status["rows_done"] == 0
            run_campaign(spec, service=service, warehouse=wh)
            status = campaign_status(spec, wh)
            assert status["rows_done"] == 6
            assert status["rows_missing"] == 0

    def test_storeless_service_gets_memory_warehouse(self):
        service = SolveService(cache=SolveCache())
        wh = warehouse_for_service(service)
        try:
            assert str(wh.path) == ":memory:"
        finally:
            wh.close()


class TestSweepMetrics:
    def test_grid_sweep_reports_the_revenue_star(self, tmp_path):
        spec = price_spec(
            sweep="grid",
            seed_count=1,
            axes={},
            base_params={
                "n_types": 4,
                "prices": [0.8, 1.2],
                "policy_levels": [0.0, 0.5],
            },
        )
        service = store_service(tmp_path)
        with warehouse_for_service(service) as wh:
            run_campaign(spec, service=service, warehouse=wh)
            rec = wh.rows(spec.digest())[0]["metrics"]
            assert rec["price_star"] in (0.8, 1.2)
            assert rec["cap_star"] in (0.0, 0.5)
            assert rec["welfare_max"] >= rec["welfare_mean"]

    def test_dynamics_sweep_reports_the_horizon(self, tmp_path):
        spec = CampaignSpec(
            campaign_id="drv-dyn",
            generator="shocked_market",
            sweep="dynamics",
            seed_count=2,
            base_params={
                "n_shocks": 1,
                "kind": "capacity",
                "horizon": 3,
                "segment_length": 2,
                "cap": 0.5,
            },
        )
        service = store_service(tmp_path)
        with warehouse_for_service(service) as wh:
            run_campaign(spec, service=service, warehouse=wh)
            for rec in wh.rows(spec.digest()):
                metrics = rec["metrics"]
                assert metrics["survived"] == 1.0
                assert metrics["adoption_final"] > 0.0
                assert np.isfinite(metrics["welfare_min"])

    def test_market_structure_sweep_tracks_concentration(self, tmp_path):
        spec = CampaignSpec(
            campaign_id="drv-olig",
            generator="random_market",
            sweep="market_structure",
            seed_count=1,
            axes={"carriers": (1, 3)},
            base_params={"n_types": 4, "grid_points": 5, "xtol": 1e-2},
        )
        service = store_service(tmp_path)
        with warehouse_for_service(service) as wh:
            run_campaign(spec, service=service, warehouse=wh)
            hhi = wh.metric(spec.digest(), "hhi")
            carriers = wh.metric(spec.digest(), "carriers")
            assert carriers.tolist() == [1.0, 3.0]
            assert hhi[0] == pytest.approx(1.0)
            assert hhi[1] < 1.0
