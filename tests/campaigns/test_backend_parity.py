"""Cross-backend parity: one campaign, two backends, identical summaries.

The warehouse summary renders at the repo's 12-significant-digit CSV
convention, which is exactly the precision at which every backend is
required to agree — so the same 64-scenario campaign run under
``REPRO_BACKEND=numpy`` and ``REPRO_BACKEND=compiled`` must produce
byte-identical summary tables.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

SPEC_ARGS = [
    "--campaign-id", "parity",
    "--rows", "32",
    "--axis", "n_types=4,6",
    "--prices", "0.8,1.2",
]


def run_cli(backend: str, cache_dir: Path, *verb_args: str) -> str:
    env = dict(
        os.environ,
        PYTHONPATH=str(REPO_ROOT / "src"),
        REPRO_BACKEND=backend,
    )
    result = subprocess.run(
        [
            sys.executable, "-m", "repro.experiments", "campaign",
            *verb_args, *SPEC_ARGS, "--cache-dir", str(cache_dir),
        ],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


@pytest.mark.parametrize("other", ["compiled"])
def test_backends_agree_byte_for_byte_at_csv_precision(tmp_path, other):
    summaries = {}
    for backend in ("numpy", other):
        cache_dir = tmp_path / backend
        run_cli(backend, cache_dir, "run")
        summaries[backend] = run_cli(
            backend, cache_dir, "summary", "--csv"
        )
    assert summaries["numpy"] == summaries[other]
    # Sanity: the table actually carries the campaign's distribution.
    lines = summaries["numpy"].strip().splitlines()
    assert lines[0].startswith("metric,count,")
    welfare = [ln for ln in lines if ln.startswith("welfare,")]
    assert welfare and welfare[0].split(",")[1] == "64"
