"""CampaignSpec: validation, deterministic expansion, serialization."""

import dataclasses

import pytest

from repro.campaigns import (
    CAMPAIGN_GENERATORS,
    CAMPAIGN_SWEEPS,
    CampaignSpec,
)
from repro.exceptions import ModelError
from repro.io import (
    CAMPAIGN_FORMAT,
    campaign_digest,
    campaign_from_dict,
    campaign_to_dict,
    load_campaign,
    save_campaign,
)


def small_spec(**overrides) -> CampaignSpec:
    fields = dict(
        campaign_id="unit",
        generator="random_market",
        sweep="price",
        seed_start=3,
        seed_count=2,
        axes={"n_types": (4, 6)},
        base_params={"prices": [0.8, 1.2]},
    )
    fields.update(overrides)
    return CampaignSpec(**fields)


class TestValidation:
    def test_registry_covers_declared_generators(self):
        assert set(CAMPAIGN_GENERATORS) == {
            "random_market",
            "scaled_market",
            "shocked_market",
        }
        assert CAMPAIGN_SWEEPS == (
            "price",
            "grid",
            "dynamics",
            "market_structure",
        )

    def test_unknown_generator_rejected(self):
        with pytest.raises(ModelError, match="generator"):
            small_spec(generator="mystery_market")

    def test_unknown_sweep_rejected(self):
        with pytest.raises(ModelError, match="sweep"):
            small_spec(sweep="vibes")

    def test_unseeded_generator_needs_single_seed(self):
        with pytest.raises(ModelError, match="seed"):
            small_spec(
                generator="scaled_market",
                seed_count=4,
                axes={"n_types": (4, 6)},
            )
        # seed_count == 1 is the legal spelling for unseeded generators.
        spec = small_spec(
            generator="scaled_market",
            seed_count=1,
            axes={"n_types": (4, 6)},
        )
        assert spec.size() == 2

    def test_forbidden_params_rejected(self):
        with pytest.raises(ModelError, match="seed"):
            small_spec(base_params={"seed": 1})
        with pytest.raises(ModelError, match="scenario_id"):
            small_spec(axes={"scenario_id": ("a", "b")})

    def test_non_finite_axis_value_rejected(self):
        with pytest.raises(ModelError, match="finite"):
            small_spec(axes={"n_types": (4, float("nan"))})

    def test_duplicate_axis_values_rejected(self):
        with pytest.raises(ModelError, match="duplicate"):
            small_spec(axes={"n_types": (4, 4)})

    def test_carriers_axis_only_for_market_structure(self):
        with pytest.raises(ModelError, match="carriers"):
            small_spec(axes={"carriers": (1, 2)})
        spec = small_spec(
            sweep="market_structure", axes={"carriers": (1, 2)}
        )
        assert spec.size() == 4

    def test_sampled_needs_positive_n_samples(self):
        with pytest.raises(ModelError, match="n_samples"):
            small_spec(sampling="sampled", n_samples=0)


class TestExpansion:
    def test_product_size_and_order(self):
        spec = small_spec()
        rows = spec.expand()
        assert len(rows) == spec.size() == 4
        assert [row.index for row in rows] == [0, 1, 2, 3]
        # Seeds iterate the range; the axis iterates within each seed.
        assert [row.seed for row in rows] == [3, 3, 4, 4]
        assert [dict(row.params)["n_types"] for row in rows] == [4, 6, 4, 6]

    def test_expansion_is_deterministic(self):
        first = small_spec().expand()
        second = small_spec().expand()
        assert [row.digest for row in first] == [
            row.digest for row in second
        ]
        assert [row.scenario_digest for row in first] == [
            row.scenario_digest for row in second
        ]

    def test_row_digests_are_unique(self):
        rows = small_spec(seed_count=5).expand()
        digests = [row.digest for row in rows]
        assert len(digests) == len(set(digests))

    def test_sampled_rows_are_seed_distinct(self):
        spec = small_spec(
            sampling="sampled",
            n_samples=6,
            sample_seed=11,
            axes={"n_types": (4, 6, 8)},
        )
        rows = spec.expand()
        assert len(rows) == 6
        assert [row.seed for row in rows] == [3, 4, 5, 6, 7, 8]
        for row in rows:
            assert dict(row.params)["n_types"] in (4, 6, 8)

    def test_sample_seed_changes_the_draw(self):
        axes = {"n_types": (4, 6, 8), "capacity": (0.5, 1.0, 2.0)}
        a = small_spec(sampling="sampled", n_samples=8, axes=axes)
        b = small_spec(
            sampling="sampled", n_samples=8, sample_seed=99, axes=axes
        )
        assert [dict(r.params) for r in a.expand()] != [
            dict(r.params) for r in b.expand()
        ]

    def test_market_structure_routes_solver_params(self):
        """Competition-solver axes must reach the metadata, not the
        generator (which would reject them)."""
        spec = small_spec(
            sweep="market_structure",
            seed_count=1,
            axes={"carriers": (2, 3)},
            base_params={"n_types": 4, "grid_points": 5, "xtol": 1e-3},
        )
        rows = spec.expand()
        assert len(rows) == 2
        for row, carriers in zip(rows, (2, 3)):
            assert row.scenario.metadata["carriers"] == carriers
            assert row.scenario.metadata["grid_points"] == 5


class TestSerialization:
    def test_round_trip_is_exact(self):
        spec = small_spec()
        payload = campaign_to_dict(spec)
        assert payload["format"] == CAMPAIGN_FORMAT
        clone = campaign_from_dict(payload)
        assert clone == spec
        assert clone.digest() == spec.digest() == campaign_digest(spec)

    def test_file_round_trip(self, tmp_path):
        spec = small_spec(sampling="sampled", n_samples=3)
        path = tmp_path / "campaign.json"
        save_campaign(spec, path)
        assert load_campaign(path) == spec

    def test_unknown_field_rejected(self):
        payload = campaign_to_dict(small_spec())
        payload["surprise"] = True
        with pytest.raises(ModelError, match="surprise"):
            campaign_from_dict(payload)

    def test_wrong_format_rejected(self):
        payload = campaign_to_dict(small_spec())
        payload["format"] = "repro-campaign/9"
        with pytest.raises(ModelError, match="format"):
            campaign_from_dict(payload)

    def test_digest_tracks_content(self):
        spec = small_spec()
        assert (
            dataclasses.replace(spec, seed_start=4).digest() != spec.digest()
        )
        # The id is part of the identity too: two campaigns over the same
        # rows keep separate warehouse manifests.
        assert (
            dataclasses.replace(spec, campaign_id="other").digest()
            != spec.digest()
        )
