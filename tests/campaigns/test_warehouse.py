"""The sqlite warehouse: atomic appends, NaN round-trip, summaries."""

import math

import numpy as np
import pytest

from repro.campaigns.warehouse import SUMMARY_FIELDS, CampaignWarehouse

CAMPAIGN = "c" * 64


@pytest.fixture
def warehouse():
    with CampaignWarehouse(":memory:") as wh:
        wh.register(
            CAMPAIGN,
            campaign_id="unit",
            title="unit campaign",
            spec={"format": "repro-campaign/1", "campaign_id": "unit"},
            total_rows=3,
        )
        yield wh


def _append(wh, digest, index, metrics, campaign=CAMPAIGN):
    return wh.append(
        campaign,
        digest=digest,
        row_index=index,
        seed=index,
        scenario_id=f"scn-{index}",
        scenario_digest="s" * 64,
        params={"n_types": 4 + index},
        metrics=metrics,
    )


class TestAppend:
    def test_append_then_read_back(self, warehouse):
        assert _append(warehouse, "d0", 0, {"welfare": 1.5, "revenue": 2.0})
        records = warehouse.rows(CAMPAIGN)
        assert len(records) == 1
        rec = records[0]
        assert rec["digest"] == "d0"
        assert rec["seed"] == 0
        assert rec["params"] == {"n_types": 4}
        assert rec["metrics"] == {"welfare": 1.5, "revenue": 2.0}

    def test_duplicate_append_is_rejected_not_duplicated(self, warehouse):
        assert _append(warehouse, "d0", 0, {"welfare": 1.0})
        assert not _append(warehouse, "d0", 0, {"welfare": 999.0})
        assert warehouse.count(CAMPAIGN) == 1
        # The first write wins; the rejected one left nothing behind.
        assert warehouse.rows(CAMPAIGN)[0]["metrics"]["welfare"] == 1.0

    def test_nan_metric_round_trips(self, warehouse):
        _append(warehouse, "d0", 0, {"welfare": float("nan"), "revenue": 1.0})
        metrics = warehouse.rows(CAMPAIGN)[0]["metrics"]
        assert math.isnan(metrics["welfare"])
        assert metrics["revenue"] == 1.0

    def test_existing_digests_is_the_resume_manifest(self, warehouse):
        _append(warehouse, "d0", 0, {"welfare": 1.0})
        _append(warehouse, "d2", 2, {"welfare": 3.0})
        assert warehouse.existing_digests(CAMPAIGN) == {"d0", "d2"}
        assert warehouse.existing_digests("x" * 64) == set()

    def test_rows_come_back_in_row_index_order(self, warehouse):
        for index in (2, 0, 1):
            _append(warehouse, f"d{index}", index, {"welfare": float(index)})
        assert [r["index"] for r in warehouse.rows(CAMPAIGN)] == [0, 1, 2]
        np.testing.assert_array_equal(
            warehouse.metric(CAMPAIGN, "welfare"), [0.0, 1.0, 2.0]
        )


class TestRegistry:
    def test_register_is_idempotent(self, warehouse):
        warehouse.register(
            CAMPAIGN,
            campaign_id="unit",
            title="unit campaign",
            spec={"format": "repro-campaign/1"},
            total_rows=3,
        )
        assert len(warehouse.campaigns()) == 1

    def test_spec_payload_round_trips(self, warehouse):
        payload = warehouse.spec_payload(CAMPAIGN)
        assert payload["campaign_id"] == "unit"
        assert warehouse.spec_payload("x" * 64) is None

    def test_incomplete_rows_flags_missing_metrics(self, warehouse):
        _append(warehouse, "d0", 0, {"welfare": 1.0, "revenue": 2.0})
        _append(warehouse, "d1", 1, {"welfare": 1.0})
        assert warehouse.incomplete_rows(CAMPAIGN) == ["d1"]


class TestSummary:
    def test_summary_statistics(self, warehouse):
        for index, welfare in enumerate((1.0, 2.0, 3.0, 4.0)):
            _append(warehouse, f"d{index}", index, {"welfare": welfare})
        stats = warehouse.summary(CAMPAIGN)["welfare"]
        assert stats["count"] == 4
        assert stats["mean"] == 2.5
        assert stats["min"] == 1.0
        assert stats["max"] == 4.0
        assert stats["median"] == 2.5
        assert stats["std"] == pytest.approx(np.std([1, 2, 3, 4]))

    def test_summary_excludes_nan(self, warehouse):
        _append(warehouse, "d0", 0, {"welfare": 1.0})
        _append(warehouse, "d1", 1, {"welfare": float("nan")})
        stats = warehouse.summary(CAMPAIGN)["welfare"]
        assert stats["count"] == 1
        assert stats["mean"] == 1.0

    def test_summary_csv_is_canonical(self, warehouse):
        _append(warehouse, "d0", 0, {"welfare": 1.0 / 3.0, "revenue": 2.0})
        text = warehouse.summary_csv(CAMPAIGN)
        lines = text.strip().splitlines()
        assert lines[0] == "metric," + ",".join(SUMMARY_FIELDS)
        # Metrics sort; values render at the 12-significant-digit
        # convention that makes the table byte-comparable across backends.
        assert lines[1].startswith("revenue,1,2,")
        assert lines[2].split(",")[2] == format(1.0 / 3.0, ".12g")


class TestLifecycle:
    def test_file_backed_warehouse_persists(self, tmp_path):
        path = tmp_path / "campaigns.sqlite"
        with CampaignWarehouse(path) as wh:
            wh.register(
                CAMPAIGN,
                campaign_id="unit",
                title="t",
                spec={},
                total_rows=1,
            )
            _append(wh, "d0", 0, {"welfare": 1.0})
        with CampaignWarehouse(path) as wh:
            assert wh.count(CAMPAIGN) == 1
            assert wh.metric_names(CAMPAIGN) == ("welfare",)
