"""Fault injection: SIGKILL a campaign mid-flight, resume, lose nothing.

The resumability contract of the warehouse manifest: killing the driver
process at an arbitrary instant leaves only whole rows behind (row +
metrics land in one transaction), and a rerun with the same cache
directory computes exactly the missing complement — no duplicate rows,
no partial rows, no recomputed survivors.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.campaigns import CampaignSpec, CampaignWarehouse
from repro.campaigns.driver import WAREHOUSE_FILENAME

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Heavy enough that the child is reliably mid-flight when we look
#: (~hundreds of solves), light enough for the default suite.
SPEC_ARGS = [
    "--campaign-id", "killer",
    "--rows", "64",
    "--param", "n_types=16",
    "--prices", "0.6,0.8,1.0,1.2,1.4,1.6",
]


def spec_for(args=SPEC_ARGS) -> CampaignSpec:
    prices = [float(v) for v in args[7].split(",")]
    return CampaignSpec(
        campaign_id="killer",
        generator="random_market",
        sweep="price",
        seed_count=64,
        base_params={"n_types": 16, "prices": prices},
    )


def spawn(cache_dir: Path) -> subprocess.Popen:
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.experiments", "campaign", "run",
            *SPEC_ARGS, "--cache-dir", str(cache_dir), "--json",
        ],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )


def landed_rows(cache_dir: Path, campaign: str) -> int:
    path = cache_dir / WAREHOUSE_FILENAME
    if not path.exists():
        return 0
    with CampaignWarehouse(path) as wh:
        return wh.count(campaign)


def test_sigkill_mid_flight_then_resume_computes_only_the_missing(tmp_path):
    spec = spec_for()
    campaign = spec.digest()
    total = spec.size()
    child = spawn(tmp_path)
    try:
        # Wait until some rows (but not all) have landed, then pull the
        # plug with the one signal nothing can catch.
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            done = landed_rows(tmp_path, campaign)
            if done >= 2:
                break
            if child.poll() is not None:
                pytest.fail("campaign finished before it could be killed")
            time.sleep(0.01)
        else:
            pytest.fail("campaign landed no rows within the deadline")
        assert child.poll() is None, "campaign finished before the kill"
        child.kill()  # SIGKILL: no atexit, no finally, no commit
        child.wait(timeout=30)
        assert child.returncode == -signal.SIGKILL
    finally:
        if child.poll() is None:
            child.kill()
            child.wait(timeout=30)

    survivors = landed_rows(tmp_path, campaign)
    assert 0 < survivors < total, "kill landed outside the useful window"

    # Every surviving row is whole: the append transaction is atomic.
    with CampaignWarehouse(tmp_path / WAREHOUSE_FILENAME) as wh:
        assert wh.incomplete_rows(campaign) == []
        survivor_digests = wh.existing_digests(campaign)
    expected = {row.digest for row in spec.expand()}
    assert survivor_digests <= expected

    # Resume with the same cache dir: exactly the complement computes.
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    resumed = subprocess.run(
        [
            sys.executable, "-m", "repro.experiments", "campaign", "run",
            *SPEC_ARGS, "--cache-dir", str(tmp_path), "--json",
        ],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert resumed.returncode == 0, resumed.stderr
    report = json.loads(resumed.stdout)
    assert report["rows_total"] == total
    assert report["rows_resumed"] == survivors
    assert report["rows_computed"] == total - survivors

    # The warehouse holds each row exactly once, whole.
    with CampaignWarehouse(tmp_path / WAREHOUSE_FILENAME) as wh:
        assert wh.count(campaign) == total
        assert wh.existing_digests(campaign) == expected
        assert wh.incomplete_rows(campaign) == []
