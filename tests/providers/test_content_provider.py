"""Unit tests for repro.providers.content_provider."""

import math

import pytest

from repro.exceptions import ModelError
from repro.network.demand import ExponentialDemand
from repro.network.throughput import ExponentialThroughput
from repro.providers.content_provider import ContentProvider, exponential_cp


class TestContentProvider:
    def test_population_delegates_to_demand(self):
        cp = exponential_cp(2.0, 3.0)
        assert cp.population(0.5) == pytest.approx(math.exp(-1.0))

    def test_traffic_class_carries_name_and_population(self):
        cp = exponential_cp(2.0, 3.0, name="video")
        cls = cp.traffic_class(1.0)
        assert cls.label == "video"
        assert cls.population == pytest.approx(math.exp(-2.0))

    def test_utility_formula(self):
        cp = exponential_cp(1.0, 1.0, value=0.8)
        assert cp.utility(subsidy=0.3, throughput=2.0) == pytest.approx(1.0)

    def test_negative_margin_gives_negative_utility(self):
        cp = exponential_cp(1.0, 1.0, value=0.2)
        assert cp.utility(subsidy=0.5, throughput=1.0) < 0.0

    def test_with_value_copies(self):
        cp = exponential_cp(1.0, 1.0, value=0.2, name="x")
        richer = cp.with_value(0.9)
        assert richer.value == 0.9
        assert richer.name == "x"
        assert cp.value == 0.2

    def test_rejects_negative_value(self):
        with pytest.raises(ModelError):
            ContentProvider(
                ExponentialDemand(alpha=1.0),
                ExponentialThroughput(beta=1.0),
                value=-0.1,
            )


class TestExponentialCpFactory:
    def test_builds_paper_family(self):
        cp = exponential_cp(3.0, 4.0, value=0.5)
        assert isinstance(cp.demand, ExponentialDemand)
        assert isinstance(cp.throughput, ExponentialThroughput)
        assert cp.demand.alpha == 3.0
        assert cp.throughput.beta == 4.0

    def test_default_name_encodes_parameters(self):
        assert exponential_cp(2.0, 5.0).name == "cp(a=2,b=5)"
        assert "v=1" in exponential_cp(2.0, 5.0, value=1.0).name

    def test_scales(self):
        cp = exponential_cp(1.0, 1.0, demand_scale=4.0, peak_rate=2.0)
        assert cp.population(0.0) == pytest.approx(4.0)
        assert cp.throughput.peak_rate() == pytest.approx(2.0)
