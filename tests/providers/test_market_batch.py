"""Batched market evaluation versus the scalar path (acceptance parity).

The contract of the array-native stack: evaluating a ``(B, N)`` profile
batch gives results identical — within atol 1e-12 — to ``B`` scalar-path
evaluations. Checked for the paper's exponential market, a mixed-family
market exercising the generic table paths, and under warm starts.
"""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.network.demand import LogitDemand
from repro.network.throughput import RationalThroughput
from repro.network.utilization import MM1Utilization
from repro.providers.content_provider import ContentProvider, exponential_cp
from repro.providers.isp import AccessISP
from repro.providers.market import Market


def _exponential_market() -> Market:
    providers = [
        exponential_cp(alpha, beta, value=value)
        for alpha, beta, value in [
            (2.0, 2.0, 0.5),
            (2.0, 5.0, 1.0),
            (5.0, 2.0, 0.8),
            (5.0, 5.0, 0.3),
        ]
    ]
    return Market(providers, AccessISP(price=1.0, capacity=1.0))


def _mixed_market() -> Market:
    providers = [
        exponential_cp(2.0, 3.0, value=1.0),
        ContentProvider(
            demand=LogitDemand(alpha=3.0, midpoint=0.9, scale=2.0),
            throughput=RationalThroughput(beta=2.0, peak=1.5),
            value=0.7,
        ),
    ]
    return Market(
        providers,
        AccessISP(price=0.8, capacity=2.0, utilization=MM1Utilization()),
    )


def _assert_batch_matches_scalar(market: Market, profiles: np.ndarray) -> None:
    batch = market.solve_batch(profiles)
    assert batch.batch_size == profiles.shape[0]
    for b in range(profiles.shape[0]):
        state = market.solve(profiles[b])
        np.testing.assert_allclose(
            batch.utilizations[b], state.utilization, rtol=0, atol=1e-12
        )
        for field in ("populations", "rates", "throughputs", "utilities"):
            np.testing.assert_allclose(
                getattr(batch, field)[b],
                getattr(state, field),
                rtol=0,
                atol=1e-12,
                err_msg=f"{field} mismatch at row {b}",
            )
        np.testing.assert_allclose(
            batch.revenues[b], state.revenue, rtol=0, atol=1e-12
        )
        np.testing.assert_allclose(
            batch.welfares[b], state.welfare, rtol=0, atol=1e-12
        )
        np.testing.assert_allclose(
            batch.gap_slopes[b], state.gap_slope, rtol=0, atol=1e-10
        )


class TestBatchScalarParity:
    def test_exponential_market(self):
        market = _exponential_market()
        rng = np.random.default_rng(7)
        profiles = rng.uniform(0.0, 0.9, size=(24, market.size))
        _assert_batch_matches_scalar(market, profiles)

    def test_mixed_family_market(self):
        market = _mixed_market()
        rng = np.random.default_rng(11)
        profiles = rng.uniform(0.0, 0.6, size=(12, market.size))
        _assert_batch_matches_scalar(market, profiles)

    def test_zero_profiles_row(self):
        market = _exponential_market()
        profiles = np.zeros((3, market.size))
        _assert_batch_matches_scalar(market, profiles)

    def test_warm_start_changes_nothing(self):
        market = _exponential_market()
        rng = np.random.default_rng(3)
        profiles = rng.uniform(0.0, 0.9, size=(8, market.size))
        cold = market.solve_batch(profiles)
        nearby = market.solve_batch(
            np.clip(profiles + 0.01, 0.0, None)
        ).utilizations
        warm = market.solve_batch(profiles, phi0=nearby)
        np.testing.assert_allclose(
            warm.utilizations, cold.utilizations, rtol=0, atol=1e-13
        )
        np.testing.assert_allclose(
            warm.throughputs, cold.throughputs, rtol=0, atol=1e-12
        )

    def test_single_profile_promotes_to_batch(self):
        market = _exponential_market()
        profile = np.full(market.size, 0.2)
        batch = market.solve_batch(profile)
        assert batch.batch_size == 1
        state = market.solve(profile)
        np.testing.assert_allclose(
            batch.utilizations[0], state.utilization, atol=1e-13
        )

    def test_state_extractor_round_trips(self):
        market = _exponential_market()
        profiles = np.array([[0.1, 0.2, 0.0, 0.4], [0.0, 0.0, 0.0, 0.0]])
        batch = market.solve_batch(profiles)
        state = batch.state(0)
        np.testing.assert_allclose(state.subsidies, profiles[0])
        assert state.price == market.isp.price
        assert state.size == market.size


class TestWarmStartSafeguards:
    def test_degenerate_warm_start_falls_back_to_cold(self):
        # PowerLawUtilization(γ=2) has an infinite supply slope at φ = 0, so
        # a warm start of exactly 0 gives Newton a zero step there; the row
        # must be re-solved cold instead of accepted at the wrong point.
        from repro.network.system import CongestionSystem
        from repro.network.throughput import ExponentialThroughput
        from repro.network.utilization import PowerLawUtilization

        system = CongestionSystem(PowerLawUtilization(gamma=2.0), capacity=10.0)
        laws = [ExponentialThroughput(beta=3.0, peak=1.0)]
        cold = system.solve_population_batch(laws, [[1.0]])
        warm = system.solve_population_batch(
            laws, [[1.0]], phi0=np.array([0.0])
        )
        assert cold.utilizations[0] > 0.0
        np.testing.assert_allclose(
            warm.utilizations, cold.utilizations, rtol=0, atol=1e-12
        )


class TestBatchValidation:
    def test_wrong_width_rejected(self):
        market = _exponential_market()
        with pytest.raises(ModelError):
            market.solve_batch(np.zeros((4, market.size + 1)))

    def test_negative_subsidy_rejected(self):
        market = _exponential_market()
        bad = np.zeros((2, market.size))
        bad[1, 0] = -0.5
        with pytest.raises(ModelError):
            market.solve_batch(bad)

    def test_non_finite_rejected(self):
        market = _exponential_market()
        bad = np.zeros((2, market.size))
        bad[0, 2] = np.nan
        with pytest.raises(ModelError):
            market.solve_batch(bad)
