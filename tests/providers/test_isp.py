"""Unit tests for repro.providers.isp."""

import pytest

from repro.exceptions import ModelError
from repro.network.utilization import LinearUtilization, MM1Utilization
from repro.providers.isp import AccessISP


class TestAccessISP:
    def test_revenue_is_price_times_throughput(self):
        isp = AccessISP(price=1.5, capacity=1.0)
        assert isp.revenue(2.0) == pytest.approx(3.0)

    def test_revenue_rejects_negative_throughput(self):
        with pytest.raises(ModelError):
            AccessISP(price=1.0, capacity=1.0).revenue(-0.1)

    def test_defaults_to_linear_utilization(self):
        isp = AccessISP(price=1.0, capacity=2.0)
        assert isinstance(isp.utilization, LinearUtilization)

    def test_congestion_system_inherits_parameters(self):
        isp = AccessISP(price=1.0, capacity=2.5, utilization=MM1Utilization())
        system = isp.congestion_system()
        assert system.capacity == 2.5
        assert isinstance(system.utilization_function, MM1Utilization)

    def test_with_price_and_capacity_copy(self):
        isp = AccessISP(price=1.0, capacity=2.0, name="isp-a")
        repriced = isp.with_price(0.5)
        expanded = isp.with_capacity(4.0)
        assert repriced.price == 0.5 and repriced.capacity == 2.0
        assert expanded.capacity == 4.0 and expanded.price == 1.0
        assert repriced.name == expanded.name == "isp-a"

    def test_validation(self):
        with pytest.raises(ModelError):
            AccessISP(price=-1.0, capacity=1.0)
        with pytest.raises(ModelError):
            AccessISP(price=1.0, capacity=0.0)
        with pytest.raises(ModelError):
            AccessISP(price=float("nan"), capacity=1.0)

    def test_zero_price_is_legal(self):
        # p = 0 is the left end of every figure's price axis.
        isp = AccessISP(price=0.0, capacity=1.0)
        assert isp.revenue(5.0) == 0.0
