"""Unit tests for repro.providers.market."""

import math

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.providers.content_provider import exponential_cp
from repro.providers.isp import AccessISP
from repro.providers.market import Market


class TestConstruction:
    def test_requires_providers(self):
        with pytest.raises(ModelError):
            Market([], AccessISP(price=1.0, capacity=1.0))

    def test_values_vector(self, two_cp_market):
        np.testing.assert_allclose(two_cp_market.values, [1.0, 0.4])

    def test_values_returns_copy(self, two_cp_market):
        values = two_cp_market.values
        values[0] = 99.0
        assert two_cp_market.values[0] == 1.0


class TestSolve:
    def test_zero_subsidies_by_default(self, two_cp_market):
        state = two_cp_market.solve()
        np.testing.assert_array_equal(state.subsidies, [0.0, 0.0])
        np.testing.assert_allclose(state.effective_prices, [1.0, 1.0])

    def test_populations_follow_demand(self, two_cp_market):
        state = two_cp_market.solve()
        np.testing.assert_allclose(
            state.populations, [math.exp(-5.0), math.exp(-2.0)], rtol=1e-12
        )

    def test_revenue_and_welfare_formulas(self, two_cp_market):
        state = two_cp_market.solve([0.2, 0.0])
        assert state.revenue == pytest.approx(1.0 * state.aggregate_throughput)
        assert state.welfare == pytest.approx(
            1.0 * state.throughputs[0] + 0.4 * state.throughputs[1]
        )

    def test_utilities_subtract_subsidy(self, two_cp_market):
        state = two_cp_market.solve([0.3, 0.1])
        np.testing.assert_allclose(
            state.utilities,
            [(1.0 - 0.3) * state.throughputs[0], (0.4 - 0.1) * state.throughputs[1]],
        )

    def test_subsidy_increases_own_population(self, two_cp_market):
        base = two_cp_market.solve()
        subsidized = two_cp_market.solve([0.5, 0.0])
        assert subsidized.populations[0] > base.populations[0]
        assert subsidized.populations[1] == pytest.approx(base.populations[1])

    def test_consistency_with_congestion_fixed_point(self, two_cp_market):
        state = two_cp_market.solve([0.2, 0.1])
        classes = two_cp_market.traffic_classes([0.2, 0.1])
        phi = two_cp_market.system.solve_utilization(classes)
        assert state.utilization == pytest.approx(phi, abs=1e-12)

    def test_rejects_bad_profiles(self, two_cp_market):
        with pytest.raises(ModelError):
            two_cp_market.solve([0.1])
        with pytest.raises(ModelError):
            two_cp_market.solve([0.1, -0.5])
        with pytest.raises(ModelError):
            two_cp_market.solve([0.1, float("nan")])

    def test_accepts_tiny_negative_noise(self, two_cp_market):
        # Solver round-off may produce -1e-15; it must clip, not raise.
        state = two_cp_market.solve([0.0, -1e-15])
        assert state.subsidies[1] == 0.0


class TestCopies:
    def test_with_price(self, two_cp_market):
        cheaper = two_cp_market.with_price(0.5)
        assert cheaper.isp.price == 0.5
        assert two_cp_market.isp.price == 1.0
        assert cheaper.solve().utilization > two_cp_market.solve().utilization

    def test_with_capacity(self, two_cp_market):
        bigger = two_cp_market.with_capacity(10.0)
        assert bigger.solve().utilization < two_cp_market.solve().utilization

    def test_with_provider(self, two_cp_market):
        richer = two_cp_market.with_provider(
            1, two_cp_market.providers[1].with_value(0.9)
        )
        assert richer.values[1] == 0.9
        assert two_cp_market.values[1] == 0.4

    def test_provider_names_fill_blanks(self):
        market = Market(
            [exponential_cp(1.0, 1.0, name=""), exponential_cp(2.0, 2.0, name="b")],
            AccessISP(price=1.0, capacity=1.0),
        )
        # Blank names fall back to positional labels.
        names = market.provider_names()
        assert names[0] == "cp0" or names[0].startswith("cp(")
        assert names[1] == "b"
