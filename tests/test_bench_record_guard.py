"""The in-tree bench baseline is guarded against cross-backend overwrite.

``benchmarks/out`` holds the committed perf trajectory, regenerated under
the compiled backend. A plain local ``pytest benchmarks/`` run under the
default numpy backend must not rewrite those records in place — the guard
in ``benchmarks.conftest._write_bench_record`` skips (and warns on) any
write into the default output dir that would flip a tracked record's
backend. Explicit ``REPRO_BENCH_DIR`` destinations are never guarded.
"""

from __future__ import annotations

import json

import pytest

from benchmarks.conftest import _write_bench_record
from repro.backend import get_backend


def _tracked_record(case: str, backend: str) -> dict:
    return {
        "backend": backend,
        "backend_requested": backend,
        "bench_schema": "repro-bench/2",
        "case": case,
        "seconds": 1.0,
    }


@pytest.fixture
def in_tree_out(tmp_path, monkeypatch):
    """A fake repo checkout whose ``benchmarks/out`` is the tracked dir."""
    monkeypatch.delenv("REPRO_BENCH_DIR", raising=False)
    monkeypatch.chdir(tmp_path)
    out = tmp_path / "benchmarks" / "out"
    out.mkdir(parents=True)
    return out


class TestTrackedBaselineGuard:
    def test_cross_backend_write_is_skipped_with_a_warning(self, in_tree_out):
        other = "cext" if get_backend().name != "cext" else "numpy"
        path = in_tree_out / "BENCH_guarded.json"
        tracked = _tracked_record("guarded", other)
        path.write_text(json.dumps(tracked))

        with pytest.warns(RuntimeWarning, match="not overwriting tracked"):
            _write_bench_record({"case": "guarded", "seconds": 2.0})

        assert json.loads(path.read_text()) == tracked

    def test_same_backend_refresh_still_writes(self, in_tree_out):
        path = in_tree_out / "BENCH_refresh.json"
        path.write_text(json.dumps(_tracked_record("refresh", get_backend().name)))

        _write_bench_record({"case": "refresh", "seconds": 2.0})

        assert json.loads(path.read_text())["seconds"] == 2.0

    def test_fresh_case_still_writes(self, in_tree_out):
        _write_bench_record({"case": "fresh", "seconds": 2.0})

        record = json.loads((in_tree_out / "BENCH_fresh.json").read_text())
        assert record["backend"] == get_backend().name

    def test_corrupt_existing_record_is_overwritten(self, in_tree_out):
        path = in_tree_out / "BENCH_corrupt.json"
        path.write_text("{not json")

        _write_bench_record({"case": "corrupt", "seconds": 2.0})

        assert json.loads(path.read_text())["seconds"] == 2.0

    def test_explicit_bench_dir_is_never_guarded(self, tmp_path, monkeypatch):
        out = tmp_path / "scratch"
        out.mkdir()
        other = "cext" if get_backend().name != "cext" else "numpy"
        path = out / "BENCH_redirected.json"
        path.write_text(json.dumps(_tracked_record("redirected", other)))
        monkeypatch.setenv("REPRO_BENCH_DIR", str(out))

        _write_bench_record({"case": "redirected", "seconds": 2.0})

        assert json.loads(path.read_text())["backend"] == get_backend().name
