"""Unit and golden tests for repro.competition.oligopoly."""

import numpy as np
import pytest

from repro.competition import (
    COMPETITION_DEFAULTS,
    Duopoly,
    IterationPolicy,
    OligopolyGame,
    competition_settings,
    oligopoly_shares,
    solve_oligopoly_competition,
    solve_price_competition,
)
from repro.competition.duopoly import carrier_shares
from repro.core.revenue import optimal_price
from repro.engine import SolveCache, SolveService, SolveStore
from repro.exceptions import ConvergenceError, ModelError
from repro.providers import AccessISP, Market, exponential_cp


def providers():
    return [
        exponential_cp(2.0, 2.0, value=1.0),
        exponential_cp(5.0, 3.0, value=0.6),
    ]


def cheap_providers():
    """One CP type: the competition dynamics are identical in shape but
    each equilibrium solve is several times cheaper — used by the tests
    that iterate full price competitions."""
    return [exponential_cp(2.0, 2.0, value=1.0)]


def carrier_isps(n, capacity=None):
    cap = capacity if capacity is not None else 1.0 / n
    return tuple(
        AccessISP(price=1.0, capacity=cap, name=f"isp-{k}") for k in range(n)
    )


def game_of(n, *, switching=2.0, cap=0.3, capacity=None, cps=None):
    return OligopolyGame(
        cps if cps is not None else providers(),
        carrier_isps(n, capacity),
        switching=switching,
        cap=cap,
        service=SolveService(cache=SolveCache()),
    )


class TestShares:
    def test_two_carriers_delegate_to_duopoly_form_bitwise(self):
        for pair in ((1.0, 1.0), (0.3, 1.7), (0.0, 2.5)):
            assert oligopoly_shares(2.0, pair) == carrier_shares(2.0, *pair)

    def test_single_carrier_owns_the_market(self):
        assert oligopoly_shares(3.0, (1.2,)) == (1.0,)

    def test_three_carriers_sum_to_one_cheapest_wins(self):
        shares = oligopoly_shares(2.0, (0.5, 1.0, 1.5))
        assert sum(shares) == pytest.approx(1.0)
        assert shares[0] > shares[1] > shares[2]

    def test_zero_switching_is_captive(self):
        shares = oligopoly_shares(0.0, (0.1, 1.0, 5.0, 2.0))
        assert shares == pytest.approx((0.25,) * 4)

    def test_extreme_prices_do_not_overflow(self):
        shares = oligopoly_shares(10.0, (0.0, 1000.0, 2000.0))
        assert shares[0] == pytest.approx(1.0)
        assert shares[1] == pytest.approx(0.0)

    def test_empty_prices_rejected(self):
        with pytest.raises(ModelError):
            oligopoly_shares(2.0, ())


class TestDuopolyParityGolden:
    """N=2 under Gauss-Seidel is bit-for-bit the duopoly module."""

    def _duopoly(self, cps=providers):
        return Duopoly(
            cps(),
            *carrier_isps(2, 0.5),
            switching=2.0,
            cap=0.3,
            service=SolveService(cache=SolveCache()),
        )

    def _oligopoly(self, cps=providers):
        return game_of(2, capacity=0.5, cps=cps())

    def test_best_response_price_bitwise_parity(self):
        duo, olig = self._duopoly(), self._oligopoly()
        for index, rival in ((0, 1.1), (1, 0.7), (0, 0.9)):
            prices = (1.0, rival) if index == 0 else (rival, 1.0)
            expected = duo.best_response_price(
                index, rival, price_range=(0.05, 2.0), grid_points=10
            )
            actual = olig.best_response_price(
                index, prices, price_range=(0.05, 2.0), grid_points=10
            )
            assert actual == expected

    def test_solve_state_bitwise_parity(self):
        duo_state = self._duopoly().solve(0.9, 1.1)
        olig_state = self._oligopoly().solve((0.9, 1.1))
        assert olig_state.prices == duo_state.prices
        assert olig_state.shares == duo_state.shares
        assert olig_state.revenues == duo_state.revenues
        assert olig_state.welfare == duo_state.welfare
        for k in range(2):
            assert (
                olig_state.equilibria[k].subsidies.tobytes()
                == duo_state.equilibria[k].subsidies.tobytes()
            )

    def test_price_competition_bitwise_parity(self):
        old = solve_price_competition(
            self._duopoly(cheap_providers),
            initial_prices=(0.7, 0.7),
            tol=1e-3, grid_points=10, price_range=(0.05, 2.0),
        )
        new = solve_oligopoly_competition(
            self._oligopoly(cheap_providers),
            initial_prices=(0.7, 0.7),
            price_range=(0.05, 2.0),
            grid_points=10,
            policy=IterationPolicy(tol=1e-3),
        )
        assert new.iterations == old.iterations
        assert new.residual == old.residual
        assert new.mode == "gauss-seidel"
        assert new.state.prices == old.state.prices
        assert new.state.shares == old.state.shares
        assert new.state.revenues == old.state.revenues
        assert new.state.welfare == old.state.welfare
        for k in range(2):
            assert (
                new.state.equilibria[k].subsidies.tobytes()
                == old.state.equilibria[k].subsidies.tobytes()
            )


class TestSection5Parity:
    """The acceptance market: N=2 on the paper's §5 market, bitwise."""

    def _games(self):
        from repro.experiments.scenarios import section5_market

        market = section5_market()
        isps = tuple(
            AccessISP(price=1.0, capacity=0.5, name=f"s5-{k}")
            for k in range(2)
        )
        duo = Duopoly(
            market.providers, *isps, switching=2.0, cap=0.5,
            service=SolveService(cache=SolveCache()),
        )
        olig = OligopolyGame(
            market.providers, isps, switching=2.0, cap=0.5,
            service=SolveService(cache=SolveCache()),
        )
        return duo, olig

    def test_best_response_and_state_bitwise_on_section5(self):
        duo, olig = self._games()
        for index, rival in ((0, 1.2), (1, 0.8)):
            prices = (1.0, rival) if index == 0 else (rival, 1.0)
            assert olig.best_response_price(
                index, prices, price_range=(0.05, 2.0), grid_points=8
            ) == duo.best_response_price(
                index, rival, price_range=(0.05, 2.0), grid_points=8
            )
        duo_state = duo.solve(0.8, 1.2)
        olig_state = olig.solve((0.8, 1.2))
        assert olig_state.shares == duo_state.shares
        assert olig_state.revenues == duo_state.revenues
        assert olig_state.welfare == duo_state.welfare
        for k in range(2):
            assert (
                olig_state.equilibria[k].subsidies.tobytes()
                == duo_state.equilibria[k].subsidies.tobytes()
            )


class TestMonopolyDegeneration:
    def test_single_carrier_recovers_the_monopoly_price(self):
        result = solve_oligopoly_competition(
            game_of(1, capacity=1.0, cps=cheap_providers()),
            price_range=(0.05, 2.0),
            grid_points=12,
            policy=IterationPolicy(damping=1.0, tol=1e-3, max_sweeps=10),
        )
        assert result.state.shares == (1.0,)
        monopoly = optimal_price(
            Market(cheap_providers(), AccessISP(price=1.0, capacity=1.0)),
            cap=0.3,
            price_range=(0.05, 2.0),
            grid_points=12,
        )
        assert result.state.prices[0] == pytest.approx(
            monopoly.price, abs=1e-3
        )
        assert result.state.total_revenue == pytest.approx(
            monopoly.revenue, rel=1e-3
        )


class TestIterationModes:
    def test_jacobi_agrees_with_gauss_seidel(self):
        gs = solve_oligopoly_competition(
            game_of(3, cps=cheap_providers()),
            initial_prices=(0.6, 0.6, 0.6),
            price_range=(0.05, 2.0),
            grid_points=8,
            xtol=1e-3,
            policy=IterationPolicy(tol=5e-3),
        )
        jacobi = solve_oligopoly_competition(
            game_of(3, cps=cheap_providers()),
            initial_prices=(0.6, 0.6, 0.6),
            price_range=(0.05, 2.0),
            grid_points=8,
            xtol=1e-3,
            policy=IterationPolicy(mode="jacobi", tol=5e-3),
        )
        assert jacobi.mode == "jacobi"
        np.testing.assert_allclose(
            jacobi.state.prices, gs.state.prices, atol=2e-2
        )
        # Symmetric carriers, symmetric start: Jacobi keeps exact symmetry.
        assert len(set(jacobi.state.prices)) == 1

    def test_carrier_stats_recorded_in_both_modes(self):
        for mode in ("gauss-seidel", "jacobi"):
            result = solve_oligopoly_competition(
                game_of(2, capacity=0.5, cps=cheap_providers()),
                price_range=(0.05, 2.0),
                grid_points=6,
                xtol=1e-2,
                policy=IterationPolicy(mode=mode, tol=2e-2),
            )
            assert len(result.carrier_stats) == 2
            for stats in result.carrier_stats:
                assert stats.sweeps == result.iterations
                assert stats.solves > 0
                assert stats.evaluations > 0
            assert result.total_solves == sum(
                s.solves for s in result.carrier_stats
            )


class TestEdgeCases:
    def test_budget_exhaustion_raises_convergence_error(self):
        with pytest.raises(ConvergenceError) as excinfo:
            solve_oligopoly_competition(
                game_of(2, capacity=0.5, cps=cheap_providers()),
                price_range=(0.05, 2.0),
                grid_points=6,
                xtol=1e-3,
                policy=IterationPolicy(tol=1e-12, max_sweeps=1),
            )
        assert excinfo.value.iterations == 1
        assert excinfo.value.residual > 1e-12

    def test_iteration_policy_validation(self):
        with pytest.raises(ValueError):
            IterationPolicy(mode="newton")
        with pytest.raises(ValueError):
            IterationPolicy(damping=0.0)
        with pytest.raises(ValueError):
            IterationPolicy(damping=1.5)
        with pytest.raises(ValueError):
            IterationPolicy(tol=0.0)
        with pytest.raises(ValueError):
            IterationPolicy(max_sweeps=0)

    def test_game_validation(self):
        with pytest.raises(ModelError):
            OligopolyGame([], carrier_isps(2))
        with pytest.raises(ModelError):
            OligopolyGame(providers(), [])
        with pytest.raises(ModelError):
            OligopolyGame(providers(), carrier_isps(2), switching=-1.0)
        with pytest.raises(ModelError):
            OligopolyGame(providers(), carrier_isps(2), cap=-0.5)

    def test_price_vector_length_checked(self):
        game = game_of(3)
        with pytest.raises(ModelError):
            game.solve((1.0, 1.0))
        with pytest.raises(ModelError):
            game.best_response_price(0, (1.0,))
        with pytest.raises(ModelError):
            solve_oligopoly_competition(game, initial_prices=(1.0, 1.0))


class TestCompetitionSettings:
    def test_defaults_when_nothing_given(self):
        settings = competition_settings()
        assert settings.policy.mode == COMPETITION_DEFAULTS["iteration_mode"]
        assert settings.policy.damping == COMPETITION_DEFAULTS["damping"]
        assert settings.price_range == COMPETITION_DEFAULTS["price_range"]
        assert settings.grid_points == COMPETITION_DEFAULTS["grid_points"]
        assert settings.xtol == COMPETITION_DEFAULTS["xtol"]

    def test_overrides_beat_metadata_beat_defaults(self):
        settings = competition_settings(
            {"damping": 0.5, "grid_points": 10},
            overrides={"grid_points": 8, "tol": None},
        )
        assert settings.policy.damping == 0.5       # metadata
        assert settings.grid_points == 8            # override wins
        assert settings.policy.tol == COMPETITION_DEFAULTS["tol"]  # None falls through

    def test_malformed_metadata_raises_model_error(self):
        for bad in (
            {"price_range": [1.0]},
            {"price_range": "wide"},
            {"damping": 1.5},
            {"iteration_mode": "sor"},
            {"grid_points": "many"},
            {"max_sweeps": 0},
        ):
            with pytest.raises(ModelError):
                competition_settings(bad)

    def test_unknown_override_key_rejected(self):
        with pytest.raises(ModelError):
            competition_settings(overrides={"dampin": 0.5})


class TestSweepTaskKey:
    def test_own_price_entry_does_not_split_the_cache(self):
        """The carrier's own entry never enters the sweep, so two searches
        differing only there must resolve to one cached task.

        Two fresh games share one service: both start from an empty warm
        profile, so the only key difference left is the masked own entry.
        (Within one game the warm-start chain legitimately changes the
        key between calls.)
        """
        service = SolveService(cache=SolveCache())

        def fresh_game():
            return OligopolyGame(
                cheap_providers(),
                carrier_isps(2, 0.5),
                switching=2.0,
                cap=0.3,
                service=service,
            )

        first = fresh_game().best_response_price(
            0, (1.0, 1.1), price_range=(0.05, 2.0), grid_points=6, xtol=1e-3
        )
        computed = service.counters.computed
        second = fresh_game().best_response_price(
            0, (2.5, 1.1), price_range=(0.05, 2.0), grid_points=6, xtol=1e-3
        )
        assert second == first
        assert service.counters.computed == computed
        assert service.counters.memory_hits >= 1


class TestWarmStoreReplay:
    def test_competition_replays_with_zero_solves(self, tmp_path):
        def run(service):
            game = OligopolyGame(
                cheap_providers(),
                carrier_isps(3),
                switching=2.0,
                cap=0.3,
                service=service,
            )
            return solve_oligopoly_competition(
                game,
                price_range=(0.05, 2.0),
                grid_points=6,
                xtol=1e-3,
                policy=IterationPolicy(tol=1e-2),
            )

        first = run(
            SolveService(cache=SolveCache(), store=SolveStore(tmp_path))
        )
        replay_service = SolveService(
            cache=SolveCache(), store=SolveStore(tmp_path)
        )
        second = run(replay_service)
        assert replay_service.counters.computed == 0
        assert replay_service.counters.store_hits > 0
        assert second.iterations == first.iterations
        assert second.state.prices == first.state.prices
        assert second.state.revenues == first.state.revenues
        for k in range(3):
            assert (
                second.state.equilibria[k].subsidies.tobytes()
                == first.state.equilibria[k].subsidies.tobytes()
            )


class TestFromScenario:
    def test_registered_oligopoly_scenario(self):
        from repro.scenarios import get_scenario

        game = OligopolyGame.from_scenario(
            get_scenario("oligopoly-4"),
            service=SolveService(cache=SolveCache()),
        )
        assert game.n_carriers == 4
        assert game.cap == 0.5
        assert game.switching == 2.0
        # Capacity split evenly: §5 market has a unit link.
        assert [isp.capacity for isp in game.isps] == [0.25] * 4

    def test_overrides_beat_metadata(self):
        from repro.scenarios import get_scenario

        game = OligopolyGame.from_scenario(
            get_scenario("oligopoly-4"),
            carriers=2,
            switching=1.0,
            cap=0.1,
            split_capacity=False,
            service=SolveService(cache=SolveCache()),
        )
        assert game.n_carriers == 2
        assert game.switching == 1.0
        assert game.cap == 0.1
        assert [isp.capacity for isp in game.isps] == [1.0, 1.0]

    def test_plain_scenario_uses_defaults(self):
        from repro.scenarios import ScenarioSpec

        spec = ScenarioSpec(
            scenario_id="plain",
            title="no oligopoly metadata",
            market=Market(providers(), AccessISP(price=1.0, capacity=1.0)),
            prices=(0.5, 1.0),
            policy_levels=(0.0,),
        )
        game = OligopolyGame.from_scenario(
            spec, service=SolveService(cache=SolveCache())
        )
        assert game.n_carriers == 2
        assert game.switching == 2.0
        assert game.cap == 0.0

    def test_invalid_carrier_count_rejected(self):
        from repro.scenarios import get_scenario

        with pytest.raises(ModelError):
            OligopolyGame.from_scenario(
                get_scenario("oligopoly-4"), carriers=0
            )
