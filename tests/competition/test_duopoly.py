"""Unit tests for repro.competition.duopoly."""

import numpy as np
import pytest

from repro.competition import Duopoly, solve_price_competition
from repro.core.revenue import optimal_price
from repro.engine import SolveCache, SolveService, SolveStore
from repro.engine.service import set_default_service
from repro.exceptions import ModelError
from repro.providers import AccessISP, Market, exponential_cp
from repro.solvers.scalar_opt import grid_polish_maximize


def providers():
    return [
        exponential_cp(2.0, 2.0, value=1.0),
        exponential_cp(5.0, 3.0, value=0.6),
    ]


def symmetric_duopoly(switching=2.0, cap=0.0):
    return Duopoly(
        providers(),
        AccessISP(price=1.0, capacity=0.5, name="isp-a"),
        AccessISP(price=1.0, capacity=0.5, name="isp-b"),
        switching=switching,
        cap=cap,
    )


class TestShares:
    def test_equal_prices_split_evenly(self):
        duo = symmetric_duopoly()
        assert duo.shares(1.0, 1.0) == pytest.approx((0.5, 0.5))

    def test_cheaper_carrier_wins_share(self):
        duo = symmetric_duopoly(switching=3.0)
        w_a, w_b = duo.shares(0.5, 1.0)
        assert w_a > 0.5 > w_b
        assert w_a + w_b == pytest.approx(1.0)

    def test_zero_switching_is_captive(self):
        duo = symmetric_duopoly(switching=0.0)
        assert duo.shares(0.1, 2.0) == pytest.approx((0.5, 0.5))

    def test_extreme_prices_do_not_overflow(self):
        duo = symmetric_duopoly(switching=10.0)
        w_a, w_b = duo.shares(0.0, 1000.0)
        assert w_a == pytest.approx(1.0)
        assert w_b == pytest.approx(0.0)


class TestCarrierDecomposition:
    def test_carrier_market_scales_demand_by_share(self):
        duo = symmetric_duopoly(switching=2.0)
        prices = (0.8, 1.2)
        w_a, _ = duo.shares(*prices)
        market = duo.carrier_market(0, prices)
        base = providers()[0].population(0.8)
        assert market.providers[0].population(0.8) == pytest.approx(w_a * base)

    def test_solve_state_consistency(self):
        duo = symmetric_duopoly(cap=0.3)
        state = duo.solve(0.9, 1.1)
        assert state.prices == (0.9, 1.1)
        assert state.shares[0] > state.shares[1]  # cheaper carrier bigger
        for k in range(2):
            assert state.revenues[k] == pytest.approx(
                state.equilibria[k].state.revenue
            )
        assert state.total_revenue == pytest.approx(sum(state.revenues))

    def test_symmetric_prices_give_symmetric_outcomes(self):
        duo = symmetric_duopoly(cap=0.3)
        state = duo.solve(1.0, 1.0)
        np.testing.assert_allclose(
            state.equilibria[0].subsidies, state.equilibria[1].subsidies,
            atol=1e-8,
        )
        assert state.revenues[0] == pytest.approx(state.revenues[1], rel=1e-8)


class TestPriceCompetition:
    @pytest.fixture(scope="class")
    def equilibrium(self):
        duo = symmetric_duopoly(switching=2.0, cap=0.3)
        return solve_price_competition(
            duo, tol=1e-4, grid_points=16, price_range=(0.05, 2.0)
        )

    def test_converges_to_symmetric_prices(self, equilibrium):
        p_a, p_b = equilibrium.state.prices
        assert p_a == pytest.approx(p_b, abs=1e-3)

    def test_competition_undercuts_monopoly(self, equilibrium):
        # A monopolist serving the same total demand at the same capacity
        # per head prices higher than either duopolist.
        monopoly_market = Market(
            providers(), AccessISP(price=1.0, capacity=1.0)
        )
        monopoly = optimal_price(
            monopoly_market, cap=0.3, price_range=(0.05, 2.0)
        )
        assert equilibrium.state.prices[0] < monopoly.price

    def test_competition_result_is_a_mutual_best_response(self, equilibrium):
        duo = symmetric_duopoly(switching=2.0, cap=0.3)
        p_a, p_b = equilibrium.state.prices
        br_a = duo.best_response_price(
            0, p_b, price_range=(0.05, 2.0), grid_points=16
        )
        assert br_a == pytest.approx(p_a, abs=0.02)


class TestSwitchingSensitivity:
    def test_more_switching_means_lower_prices(self):
        sticky = solve_price_competition(
            symmetric_duopoly(switching=0.5, cap=0.0),
            tol=1e-3, grid_points=14, price_range=(0.05, 2.0),
        )
        fluid = solve_price_competition(
            symmetric_duopoly(switching=4.0, cap=0.0),
            tol=1e-3, grid_points=14, price_range=(0.05, 2.0),
        )
        assert fluid.state.prices[0] < sticky.state.prices[0]


class TestSubsidizationUnderCompetition:
    def test_deregulation_raises_both_carriers_revenue(self):
        # §6's conjecture: competition plus subsidization still pays.
        base = symmetric_duopoly(cap=0.0).solve(0.6, 0.6)
        dereg = symmetric_duopoly(cap=0.5).solve(0.6, 0.6)
        assert dereg.revenues[0] > base.revenues[0]
        assert dereg.revenues[1] > base.revenues[1]
        assert dereg.welfare > base.welfare


class LegacyDuopoly(Duopoly):
    """The pre-refactor scalar best-response search, re-implemented verbatim.

    Before the solve-service reroute, ``best_response_price`` maximized a
    closure of nested scalar ``revenue_of`` solves in-process. Golden
    reference for the engine-path bitwise-parity tests below.
    """

    def best_response_price(
        self,
        index,
        rival_price,
        *,
        price_range=(0.0, 3.0),
        grid_points=32,
        xtol=1e-7,
    ):
        def revenue(p):
            prices = (p, rival_price) if index == 0 else (rival_price, p)
            return self.revenue_of(index, prices)

        return grid_polish_maximize(
            revenue, price_range[0], price_range[1],
            grid_points=grid_points, xtol=xtol,
        ).x

    def solve(self, price_a, price_b):
        from repro.competition.duopoly import DuopolyState
        from repro.core.equilibrium import solve_equilibrium
        from repro.core.game import SubsidizationGame

        prices = (float(price_a), float(price_b))
        shares = self.shares(*prices)
        equilibria = []
        for k in range(2):
            market = self.carrier_market(k, prices)
            equilibrium = solve_equilibrium(
                SubsidizationGame(market, self.cap),
                initial=self._warm.get(k),
            )
            self._warm[k] = equilibrium.subsidies
            equilibria.append(equilibrium)
        welfare = sum(eq.state.welfare for eq in equilibria)
        return DuopolyState(
            prices=prices,
            shares=shares,
            equilibria=(equilibria[0], equilibria[1]),
            revenues=(equilibria[0].state.revenue, equilibria[1].state.revenue),
            welfare=welfare,
        )


def assert_states_bitwise_equal(a, b):
    assert a.prices == b.prices
    assert a.shares == b.shares
    assert a.revenues == b.revenues
    assert a.welfare == b.welfare
    for k in range(2):
        assert (
            a.equilibria[k].subsidies.tobytes()
            == b.equilibria[k].subsidies.tobytes()
        )


def _duopoly_of(cls, **kwargs):
    return cls(
        providers(),
        AccessISP(price=1.0, capacity=0.5, name="isp-a"),
        AccessISP(price=1.0, capacity=0.5, name="isp-b"),
        switching=2.0,
        cap=0.3,
        **kwargs,
    )


class TestEnginePathGolden:
    """Golden: the service-routed search == the pre-refactor scalar path."""

    def test_best_response_price_bitwise_parity(self):
        legacy = _duopoly_of(LegacyDuopoly)
        routed = _duopoly_of(
            Duopoly, service=SolveService(cache=SolveCache())
        )
        for index, rival in ((0, 1.1), (1, 0.7), (0, 0.9)):
            expected = legacy.best_response_price(
                index, rival, price_range=(0.05, 2.0), grid_points=12
            )
            actual = routed.best_response_price(
                index, rival, price_range=(0.05, 2.0), grid_points=12
            )
            assert actual == expected

    def test_price_competition_bitwise_parity(self):
        old = solve_price_competition(
            _duopoly_of(LegacyDuopoly),
            tol=1e-4, grid_points=12, price_range=(0.05, 2.0),
        )
        routed = _duopoly_of(
            Duopoly, service=SolveService(cache=SolveCache())
        )
        new = solve_price_competition(
            routed, tol=1e-4, grid_points=12, price_range=(0.05, 2.0)
        )
        assert new.iterations == old.iterations
        assert new.residual == old.residual
        assert_states_bitwise_equal(new.state, old.state)

    def test_warm_store_replays_competition_without_solves(self, tmp_path):
        def run(service):
            duo = Duopoly(
                providers(),
                AccessISP(price=1.0, capacity=0.5, name="isp-a"),
                AccessISP(price=1.0, capacity=0.5, name="isp-b"),
                switching=2.0,
                cap=0.3,
                service=service,
            )
            return solve_price_competition(
                duo, tol=1e-4, grid_points=12, price_range=(0.05, 2.0)
            )

        first = run(
            SolveService(cache=SolveCache(), store=SolveStore(tmp_path))
        )
        replay_service = SolveService(
            cache=SolveCache(), store=SolveStore(tmp_path)
        )
        second = run(replay_service)
        # Every best-response sweep replays from the persistent store.
        assert replay_service.counters.computed == 0
        assert replay_service.counters.store_hits > 0
        assert second.iterations == first.iterations
        assert_states_bitwise_equal(second.state, first.state)


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ModelError):
            Duopoly(
                providers(),
                AccessISP(price=1.0, capacity=1.0),
                AccessISP(price=1.0, capacity=1.0),
                switching=-1.0,
            )
        with pytest.raises(ModelError):
            Duopoly(
                [],
                AccessISP(price=1.0, capacity=1.0),
                AccessISP(price=1.0, capacity=1.0),
            )
        with pytest.raises(ValueError):
            solve_price_competition(symmetric_duopoly(), damping=0.0)
