"""HTTP layer tests for `repro serve`.

Most cases drive :meth:`ServeApp.handle` directly — it is synchronous
and socket-free, so every route, error shape and status code is testable
without a running event loop. One end-to-end class then boots the real
asyncio server on an ephemeral port and talks to it with
:class:`ServeClient` over actual sockets.
"""

import json
import socket
import threading

import pytest

from repro.io import scenario_to_dict
from repro.providers import AccessISP, Market, exponential_cp
from repro.scenarios.spec import ScenarioSpec
from repro.server import JobManager, ServeApp, ServeClient, run_server
from repro.server.client import ServeError
from repro.server.http import MAX_BODY_BYTES


def tiny_scenario(sid="tiny-a"):
    market = Market(
        [
            exponential_cp(2.0, 2.0, value=1.0),
            exponential_cp(5.0, 3.0, value=0.6),
        ],
        AccessISP(price=1.0, capacity=1.0),
    )
    return ScenarioSpec(
        scenario_id=sid,
        title="tiny test scenario",
        market=market,
        prices=(0.5, 1.0),
        policy_levels=(0.0, 0.5),
    )


def stub_runner(scn, service):
    return {"solved": scn.scenario_id}


@pytest.fixture
def app():
    manager = JobManager(runner=stub_runner, workers=0)
    yield ServeApp(manager)
    manager.close()


def submit(app, document):
    return app.handle("POST", "/jobs", json.dumps(document).encode())


class TestRoutes:
    def test_health(self, app):
        status, payload = app.handle("GET", "/health", b"")
        assert status == 200
        assert payload["status"] == "ok"

    def test_stats_shape(self, app):
        status, payload = app.handle("GET", "/stats", b"")
        assert status == 200
        assert set(payload) >= {"jobs", "service"}
        assert payload["jobs"]["submitted"] == 0
        # The service block carries the store + memory tiers the ops
        # story depends on.
        assert "store" in payload["service"]
        assert "memory" in payload["service"]
        assert "inflight" in payload["service"]

    def test_submit_by_registered_id(self, app):
        status, payload = submit(app, {"scenario": "section3"})
        assert status == 202
        assert payload["state"] == "queued"
        assert payload["scenario_id"] == "section3"
        assert not payload["coalesced"]

    def test_submit_by_document(self, app):
        doc = scenario_to_dict(tiny_scenario())
        status, payload = submit(app, {"scenario": doc})
        assert status == 202
        assert payload["scenario_id"] == "tiny-a"

    def test_duplicate_submit_is_200_coalesced(self, app):
        first = submit(app, {"scenario": "section3"})[1]
        status, payload = submit(app, {"scenario": "section3"})
        assert status == 200
        assert payload["coalesced"]
        assert payload["job_id"] == first["job_id"]

    def test_job_listing_and_detail(self, app):
        job_id = submit(app, {"scenario": "section3"})[1]["job_id"]
        status, listing = app.handle("GET", "/jobs", b"")
        assert status == 200
        assert [j["job_id"] for j in listing["jobs"]] == [job_id]
        status, detail = app.handle("GET", f"/jobs/{job_id}", b"")
        assert status == 200
        assert detail["state"] == "queued"

    def test_result_409_until_terminal(self, app):
        doc = scenario_to_dict(tiny_scenario())
        job_id = submit(app, {"scenario": doc})[1]["job_id"]
        status, payload = app.handle("GET", f"/jobs/{job_id}/result", b"")
        assert status == 409
        assert "error" in payload
        app.manager.pump()
        status, payload = app.handle("GET", f"/jobs/{job_id}/result", b"")
        assert status == 200
        assert payload["result"] == {"solved": "tiny-a"}

    def test_cancel(self, app):
        job_id = submit(app, {"scenario": "section3"})[1]["job_id"]
        status, payload = app.handle("POST", f"/jobs/{job_id}/cancel", b"")
        assert status == 200
        assert payload["state"] == "cancelled"

    def test_wait_returns_after_pump(self, app):
        doc = scenario_to_dict(tiny_scenario())
        job_id = submit(app, {"scenario": doc})[1]["job_id"]
        app.manager.pump()
        status, payload = app.handle("GET", f"/jobs/{job_id}?wait=5", b"")
        assert status == 200
        assert payload["state"] == "done"


class TestErrors:
    @pytest.mark.parametrize(
        "method,path,body,status",
        [
            ("GET", "/nope", b"", 404),
            ("GET", "/jobs/job-999", b"", 404),
            ("GET", "/jobs/job-999/result", b"", 404),
            ("POST", "/jobs/job-999/cancel", b"", 404),
            ("POST", "/health", b"", 405),
            ("DELETE", "/jobs", b"", 405),
            ("POST", "/jobs", b"not json", 400),
            ("POST", "/jobs", b"{}", 400),
            ("POST", "/jobs", b'{"scenario": 42}', 400),
            ("POST", "/jobs", b'{"scenario": "no-such-scenario"}', 404),
            ("POST", "/jobs", b'{"scenario": {"bogus": true}}', 400),
        ],
    )
    def test_error_shape(self, app, method, path, body, status):
        got_status, payload = app.handle(method, path, body)
        assert got_status == status
        assert isinstance(payload["error"], str) and payload["error"]

    def test_bad_wait_values(self, app):
        job_id = submit(app, {"scenario": "section3"})[1]["job_id"]
        for query in ("wait=forever", "wait=-3"):
            status, payload = app.handle("GET", f"/jobs/{job_id}?{query}", b"")
            assert status == 400, query
            assert "error" in payload

    def test_wait_is_clamped_not_rejected(self, app):
        job_id = submit(app, {"scenario": "section3"})[1]["job_id"]
        app.manager.cancel(job_id)  # terminal: wait returns immediately
        status, payload = app.handle("GET", f"/jobs/{job_id}?wait=9999", b"")
        assert status == 200
        assert payload["state"] == "cancelled"


class TestLiveServer:
    """Real socket round-trips: asyncio server + HTTP client."""

    @pytest.fixture
    def endpoint(self):
        import asyncio

        manager = JobManager(runner=stub_runner, workers=1)
        bound = {}
        listening = threading.Event()
        loop = asyncio.new_event_loop()
        task_box = {}

        def on_bound(address):
            bound["host"], bound["port"] = address
            listening.set()

        def runner():
            task_box["task"] = loop.create_task(
                run_server(manager, host="127.0.0.1", port=0, on_bound=on_bound)
            )
            try:
                loop.run_until_complete(task_box["task"])
            except asyncio.CancelledError:
                pass
            finally:
                loop.close()

        thread = threading.Thread(target=runner, daemon=True)
        thread.start()
        assert listening.wait(10), "server failed to bind"
        yield bound["host"], bound["port"]
        loop.call_soon_threadsafe(task_box["task"].cancel)
        thread.join(10)
        assert not thread.is_alive()
        manager.close()

    def test_full_round_trip_over_sockets(self, endpoint):
        host, port = endpoint
        client = ServeClient(host, port, timeout=30)
        assert client.health()["status"] == "ok"
        record = client.run(scenario_to_dict(tiny_scenario()), timeout=60)
        assert record["state"] == "done"
        result = client.result(record["job_id"])
        assert result["result"] == {"solved": "tiny-a"}
        # Duplicate submit over the wire coalesces to the same job.
        again = client.submit(scenario_to_dict(tiny_scenario()))
        assert again["coalesced"]
        assert again["job_id"] == record["job_id"]
        stats = client.stats()
        assert stats["jobs"]["completed"] == 1
        assert stats["jobs"]["coalesced"] == 1

    def test_unknown_scenario_is_serve_error(self, endpoint):
        host, port = endpoint
        client = ServeClient(host, port, timeout=30)
        with pytest.raises(ServeError) as err:
            client.submit("no-such-scenario")
        assert err.value.status == 404

    def test_oversized_body_is_413(self, endpoint):
        host, port = endpoint
        # Raw socket: announce an oversized body without sending it, so
        # the rejection races nothing.
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(
                b"POST /jobs HTTP/1.1\r\n"
                b"Host: test\r\n"
                + f"Content-Length: {MAX_BODY_BYTES + 1}\r\n\r\n".encode()
            )
            response = b""
            while b"\r\n\r\n" not in response:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                response += chunk
        assert b"413" in response.split(b"\r\n", 1)[0]
