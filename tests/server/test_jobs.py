"""Unit tests for the serve daemon's job queue (no sockets involved).

The :class:`~repro.server.jobs.JobManager` contract: digests coalesce
while live-or-done, terminal states are sticky, cancel only catches
queued jobs, counters are monotone, and the default runner really solves
a scenario through an explicitly provided service.
"""

import threading
import time

import pytest

from repro.engine import SolveCache, SolveService, SolveStore
from repro.providers import AccessISP, Market, exponential_cp
from repro.scenarios.spec import ScenarioSpec
from repro.server.jobs import TERMINAL_STATES, JobManager, experiment_payload


def tiny_scenario(sid="tiny-a", price=1.0):
    market = Market(
        [
            exponential_cp(2.0, 2.0, value=1.0),
            exponential_cp(5.0, 3.0, value=0.6),
        ],
        AccessISP(price=price, capacity=1.0),
    )
    return ScenarioSpec(
        scenario_id=sid,
        title="tiny test scenario",
        market=market,
        prices=(0.5, 1.0),
        policy_levels=(0.0, 0.5),
    )


def stub_runner(scn, service):
    return {"solved": scn.scenario_id}


def failing_runner(scn, service):
    raise RuntimeError("solver exploded")


@pytest.fixture
def manager():
    mgr = JobManager(runner=stub_runner, workers=0)  # pump mode
    yield mgr
    mgr.close()


class TestLifecycle:
    def test_submit_pump_done(self, manager):
        job, coalesced = manager.submit(tiny_scenario())
        assert not coalesced
        assert job.state == "queued"
        assert manager.pump()
        assert job.state == "done"
        assert job.result == {"solved": "tiny-a"}
        assert job.error is None
        assert job.finished_at is not None

    def test_failed_job_is_a_record_not_a_crash(self):
        mgr = JobManager(runner=failing_runner, workers=0)
        try:
            job, _ = mgr.submit(tiny_scenario())
            assert mgr.pump()
            assert job.state == "failed"
            assert "solver exploded" in job.error
            assert job.result is None
        finally:
            mgr.close()

    def test_cancel_queued_only(self, manager):
        job, _ = manager.submit(tiny_scenario())
        cancelled = manager.cancel(job.job_id)
        assert cancelled.state == "cancelled"
        # The stale queue token is consumed without running anything.
        assert manager.pump() is False
        assert job.state == "cancelled"

    def test_cancel_unknown_is_none(self, manager):
        assert manager.cancel("job-999") is None

    def test_terminal_states_sticky(self, manager):
        job, _ = manager.submit(tiny_scenario())
        manager.pump()
        assert job.state == "done"
        # Cancel after done: a no-op, not a transition.
        assert manager.cancel(job.job_id).state == "done"

    def test_describe_shapes(self, manager):
        job, _ = manager.submit(tiny_scenario())
        record = job.describe()
        assert record["state"] == "queued"
        assert "result" not in record
        manager.pump()
        assert job.describe(with_result=True)["result"] == {
            "solved": "tiny-a"
        }


class TestCoalescing:
    def test_duplicate_submit_coalesces(self, manager):
        first, c1 = manager.submit(tiny_scenario())
        second, c2 = manager.submit(tiny_scenario())
        assert (c1, c2) == (False, True)
        assert first is second
        # Still one queue token; one pump settles everything.
        assert manager.pump()
        assert manager.pump() is False
        assert manager.stats()["coalesced"] == 1

    def test_done_jobs_keep_coalescing(self, manager):
        first, _ = manager.submit(tiny_scenario())
        manager.pump()
        again, coalesced = manager.submit(tiny_scenario())
        assert coalesced and again is first

    def test_distinct_scenarios_do_not_coalesce(self, manager):
        a, _ = manager.submit(tiny_scenario("tiny-a"))
        b, coalesced = manager.submit(tiny_scenario("tiny-b"))
        assert not coalesced
        assert a.job_id != b.job_id

    def test_failed_and_cancelled_do_not_coalesce(self):
        mgr = JobManager(runner=failing_runner, workers=0)
        try:
            failed, _ = mgr.submit(tiny_scenario())
            mgr.pump()
            assert failed.state == "failed"
            retry, coalesced = mgr.submit(tiny_scenario())
            assert not coalesced and retry.job_id != failed.job_id
            cancelled = mgr.cancel(retry.job_id)
            assert cancelled.state == "cancelled"
            third, coalesced = mgr.submit(tiny_scenario())
            assert not coalesced and third.job_id != retry.job_id
        finally:
            mgr.close()


class TestThreadedWorkers:
    def test_wait_reaches_terminal(self):
        mgr = JobManager(runner=stub_runner, workers=2)
        try:
            jobs = [
                mgr.submit(tiny_scenario(f"tiny-{i}"))[0] for i in range(5)
            ]
            for job in jobs:
                settled = mgr.wait(job.job_id, timeout=30.0)
                assert settled.state == "done"
        finally:
            mgr.close()

    def test_concurrent_duplicate_submits_one_solve(self):
        calls = []
        lock = threading.Lock()

        def counting_runner(scn, service):
            with lock:
                calls.append(scn.scenario_id)
            time.sleep(0.05)
            return {"ok": True}

        mgr = JobManager(runner=counting_runner, workers=2)
        try:
            ids = set()

            def client():
                job, _ = mgr.submit(tiny_scenario())
                mgr.wait(job.job_id, timeout=30.0)
                ids.add(job.job_id)

            threads = [threading.Thread(target=client) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len(ids) == 1  # everyone polled the same job
            assert calls == ["tiny-a"]  # and it solved exactly once
        finally:
            mgr.close()

    def test_close_cancels_pending_and_rejects_submits(self):
        mgr = JobManager(runner=stub_runner, workers=0)
        job, _ = mgr.submit(tiny_scenario())
        mgr.close()
        assert job.state == "cancelled"  # never ran, terminal anyway
        with pytest.raises(RuntimeError):
            mgr.submit(tiny_scenario("tiny-b"))
        mgr.close()  # idempotent


class TestStats:
    def test_counters_track_events(self, manager):
        manager.submit(tiny_scenario("tiny-a"))
        manager.submit(tiny_scenario("tiny-a"))
        b, _ = manager.submit(tiny_scenario("tiny-b"))
        manager.cancel(b.job_id)
        manager.pump()
        stats = manager.stats()
        assert stats["submitted"] == 3
        assert stats["coalesced"] == 1
        assert stats["started"] == 1
        assert stats["completed"] == 1
        assert stats["cancelled"] == 1
        assert stats["failed"] == 0
        assert stats["jobs"] == 2
        assert stats["queued"] == 0 and stats["running"] == 0


class TestDefaultRunner:
    def test_solves_through_the_given_service(self, tmp_path):
        service = SolveService(
            cache=SolveCache(),
            store=SolveStore(tmp_path / "store"),
            executor="serial",
        )
        mgr = JobManager(service=service, workers=0)
        try:
            job, _ = mgr.submit(tiny_scenario())
            assert mgr.pump()
            assert job.error is None and job.state == "done"
            result = job.result
            assert result["experiment_id"] == "tiny-a"
            figure_ids = [f["figure_id"] for f in result["figures"]]
            assert "tiny-a-revenue" in figure_ids
            for figure in result["figures"]:
                assert len(figure["x"]) == 2  # the scenario's price axis
                assert all(
                    len(s["y"]) == len(figure["x"]) for s in figure["series"]
                )
            assert all(c["passed"] for c in result["checks"])
            # The solve went through *this* service and its store.
            assert service.counters.computed > 0
            assert len(service.store) > 0
            # A duplicate scenario resubmitted later (fresh manager, same
            # service) replays entirely from the store.
            service.clear_memory()
            service.reset_counters()
            mgr2 = JobManager(service=service, workers=0)
            try:
                job2, _ = mgr2.submit(tiny_scenario())
                assert mgr2.pump()
                assert job2.state == "done"
                assert service.counters.computed == 0
            finally:
                mgr2.close()
        finally:
            mgr.close()
            service.close()

    def test_payload_round_trips_json(self, tmp_path):
        import json as _json

        from repro.experiments.pipeline import run_spec, scenario_experiment

        scn = tiny_scenario()
        result = run_spec(scenario_experiment(scn), scenario=scn)
        payload = experiment_payload(result)
        assert _json.loads(_json.dumps(payload)) == payload
        assert TERMINAL_STATES == {"done", "failed", "cancelled"}
