"""ISP pricing: revenue-optimal prices with and without subsidization.

Run with::

    python examples/isp_pricing.py

Section 5.1 of the paper: the ISP picks its usage price knowing CPs will
re-equilibrate their subsidies. This example finds the revenue-optimal price
under the regulated baseline (q = 0) and under deregulation (q = 2),
validates Theorem 7's marginal-revenue decomposition against a finite
difference, and prints the welfare consequences of the ISP's price response —
the paper's case for price regulation in uncompetitive access markets.
"""

import numpy as np

from repro import SubsidizationGame, optimal_price, solve_equilibrium
from repro.analysis import format_table
from repro.core.revenue import marginal_revenue_decomposition
from repro.experiments.scenarios import section5_market


def main() -> None:
    market = section5_market()

    rows = []
    for q in (0.0, 0.5, 1.0, 2.0):
        best = optimal_price(market, cap=q, price_range=(0.0, 3.0))
        state = best.equilibrium.state
        rows.append(
            [q, best.price, best.revenue, state.welfare, state.utilization]
        )
    print("== revenue-optimal ISP price by policy regime ==")
    print(
        format_table(
            ["cap q", "optimal p*", "revenue R*", "welfare W", "phi"], rows
        )
    )
    print()
    print("Deregulation raises the ISP's optimal revenue; if it also raises")
    print("p*, part of the welfare gain is clawed back — the paper's argument")
    print("for price regulation when the access market is uncompetitive.")
    print()

    # Theorem 7: the marginal-revenue decomposition matches a finite
    # difference of the equilibrium revenue curve.
    p0, q = 0.9, 2.0
    game = SubsidizationGame(market.with_price(p0), q)
    eq = solve_equilibrium(game)
    decomposition = marginal_revenue_decomposition(game, eq.subsidies)

    h = 1e-5
    def revenue_at(p: float) -> float:
        return solve_equilibrium(
            SubsidizationGame(market.with_price(p), q), initial=eq.subsidies
        ).state.revenue

    fd = (revenue_at(p0 + h) - revenue_at(p0 - h)) / (2 * h)
    print(f"== Theorem 7 at p = {p0}, q = {q} ==")
    print(f"dR/dp analytic (eq. 13) = {decomposition.total:+.6f}")
    print(f"dR/dp finite difference = {fd:+.6f}")
    print(f"  direct term  Σθ_i        = {decomposition.direct_term:+.6f}")
    print(f"  demand term  Υ·Σε^m_p θ_i = {decomposition.demand_term:+.6f}")
    print(f"  congestion-relief factor Υ = {decomposition.upsilon:.6f}")


if __name__ == "__main__":
    main()
