"""The startup question: does subsidization competition kill small CPs?

Run with::

    python examples/startup_cp.py

Section 6 of the paper addresses the main anti-competitive worry about
sponsored data: a low-profitability startup cannot afford to subsidize, so
deregulation might squeeze it out. This example puts a startup (low v) among
profitable incumbents and separates the two effects the paper distinguishes:

* the *subsidization effect* — fix the price, relax q, measure the startup's
  throughput loss to the congestion externality;
* the *price effect* — fix q, raise the ISP price, measure the loss to
  demand suppression.

The paper's claim: the startup's real problem is high access prices (and low
profitability), not the existence of subsidization. The numbers here let you
see the relative magnitudes directly, plus the venture-capital counterfactual
(fund the startup's subsidies by raising its effective v).
"""

import numpy as np

from repro import (
    AccessISP,
    Market,
    SubsidizationGame,
    exponential_cp,
    solve_equilibrium,
)
from repro.analysis import format_table


def build_market(price: float, startup_value: float) -> Market:
    providers = [
        exponential_cp(5.0, 2.0, value=1.0, name="incumbent-video"),
        exponential_cp(5.0, 5.0, value=1.0, name="incumbent-social"),
        exponential_cp(2.0, 2.0, value=0.8, name="incumbent-games"),
        exponential_cp(3.0, 4.0, value=startup_value, name="startup"),
    ]
    return Market(providers, AccessISP(price=price, capacity=1.0))


def startup_throughput(price: float, cap: float, startup_value: float = 0.1) -> float:
    market = build_market(price, startup_value)
    eq = solve_equilibrium(SubsidizationGame(market, cap))
    return float(eq.state.throughputs[-1])


def main() -> None:
    base_price = 0.8

    print("== effect 1: deregulation at a fixed, competitive price ==")
    rows = []
    reference = startup_throughput(base_price, 0.0)
    for cap in (0.0, 0.5, 1.0, 2.0):
        theta = startup_throughput(base_price, cap)
        rows.append([cap, theta, 100.0 * (theta / reference - 1.0)])
    print(format_table(["cap q", "startup throughput", "% vs q=0"], rows))
    print()

    print("== effect 2: price increases under deregulation (q = 1) ==")
    rows = []
    reference = startup_throughput(base_price, 1.0)
    for price in (0.8, 1.2, 1.6, 2.0):
        theta = startup_throughput(price, 1.0)
        rows.append([price, theta, 100.0 * (theta / reference - 1.0)])
    print(format_table(["price p", "startup throughput", "% vs p=0.8"], rows))
    print()

    print("== counterfactual: venture funding lets the startup subsidize ==")
    rows = []
    for funded_value in (0.1, 0.4, 0.8):
        market = build_market(base_price, funded_value)
        eq = solve_equilibrium(SubsidizationGame(market, 1.0))
        rows.append(
            [
                funded_value,
                float(eq.subsidies[-1]),
                float(eq.state.throughputs[-1]),
                float(eq.state.populations[-1]),
            ]
        )
    print(
        format_table(
            ["effective v", "startup subsidy", "throughput", "users"], rows
        )
    )
    print()
    print("Reading: the q-sweep moves the startup's throughput by a few")
    print("percent (congestion externality), while price increases cut it")
    print("by far more — matching the paper's diagnosis that high access")
    print("prices, not subsidization, are the startup's real obstacle.")


if __name__ == "__main__":
    main()
