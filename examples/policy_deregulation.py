"""Deregulation sweep: what happens as the subsidy cap q relaxes.

Run with::

    python examples/policy_deregulation.py

Reproduces the Corollary 1 story on the paper's 8-CP Section 5 market at a
fixed (competitive/regulated) ISP price: as q grows, CPs subsidize more, the
system's utilization and the ISP's revenue rise monotonically — the paper's
investment-incentive argument — while congestion-sensitive CPs can lose
throughput in the short run.
"""

import numpy as np

from repro import SubsidizationGame, solve_equilibrium
from repro.analysis import format_table
from repro.core.dynamics import deregulation_effect, equilibrium_sensitivity
from repro.experiments.scenarios import section5_market


def main() -> None:
    market = section5_market(price=0.8)
    caps = np.linspace(0.0, 2.0, 9)

    rows = []
    previous = None
    baseline_throughputs = None
    for q in caps:
        game = SubsidizationGame(market, float(q))
        eq = solve_equilibrium(game, initial=previous)
        previous = eq.subsidies
        state = eq.state
        if baseline_throughputs is None:
            baseline_throughputs = state.throughputs.copy()
        losers = int(np.sum(state.throughputs < baseline_throughputs - 1e-9))
        rows.append(
            [
                float(q),
                float(np.max(eq.subsidies)),
                float(state.utilization),
                float(state.revenue),
                float(state.welfare),
                losers,
            ]
        )
    print("== deregulation sweep at fixed price p = 0.8 ==")
    print(
        format_table(
            ["cap q", "max s_i", "phi", "ISP revenue", "welfare", "CPs below q=0"],
            rows,
        )
    )

    # Corollary 1's local version: at the q = 1 equilibrium, the analytic
    # derivatives dphi/dq and dR/dq are non-negative.
    game = SubsidizationGame(market, 1.0)
    eq = solve_equilibrium(game)
    sens = equilibrium_sensitivity(game, eq.subsidies)
    effect = deregulation_effect(game, eq.subsidies, sens)
    print()
    print(f"at q = 1: dphi/dq = {effect.dphi_dq:.5f}  dR/dq = {effect.drevenue_dq:.5f}")
    print(f"per-CP ds/dq = {np.round(effect.ds_dq, 5)}")
    print("(both non-negative: deregulation raises utilization and revenue,")
    print(" strengthening the ISP's incentive to invest in capacity)")


if __name__ == "__main__":
    main()
