"""Capacity planning: the investment feedback loop the paper argues for.

Run with::

    python examples/capacity_planning.py

Section 6 leaves the ISP's capacity decision as future work; this example
closes the loop with the library's :mod:`repro.simulation.capacity`
extension. The ISP reinvests a fixed share of usage revenue into capacity
each period. Comparing the regulated (q = 0) and deregulated (q = 2)
trajectories shows the paper's central claim quantitatively: subsidization
raises revenue, revenue funds capacity, and the added capacity eventually
relieves the congestion that hurt sensitive CPs in the short run.
"""

from repro.analysis import format_table
from repro.experiments.scenarios import section5_market
from repro.simulation import simulate_capacity_expansion


def main() -> None:
    market = section5_market(price=0.8)
    periods = 12

    plans = {
        "regulated (q=0)": simulate_capacity_expansion(
            market, cap=0.0, periods=periods, reinvestment_rate=0.3
        ),
        "deregulated (q=2)": simulate_capacity_expansion(
            market, cap=2.0, periods=periods, reinvestment_rate=0.3
        ),
    }

    for name, plan in plans.items():
        print(f"== {name} ==")
        rows = []
        for t in range(0, periods + 1, 2):
            rows.append(
                [
                    t,
                    float(plan.capacities[t]),
                    float(plan.revenues[t]),
                    float(plan.utilizations[t]),
                    float(plan.welfares[t]),
                ]
            )
        print(
            format_table(
                ["period", "capacity µ", "revenue R", "phi", "welfare W"], rows
            )
        )
        print(f"total capacity growth: {100.0 * plan.capacity_growth():.1f}%")
        print()

    regulated = plans["regulated (q=0)"]
    deregulated = plans["deregulated (q=2)"]
    extra = deregulated.capacities[-1] / regulated.capacities[-1] - 1.0
    print(f"deregulation funds {100.0 * extra:.1f}% more capacity after "
          f"{periods} periods — the paper's investment-incentive mechanism.")


if __name__ == "__main__":
    main()
