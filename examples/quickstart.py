"""Quickstart: build a market, solve the subsidization game, read the state.

Run with::

    python examples/quickstart.py

Models two content providers on one access ISP: a profitable video platform
with price-sensitive users and a small news site with loyal users, and shows
what happens when regulation allows them to subsidize usage fees.
"""

import numpy as np

from repro import (
    AccessISP,
    Market,
    SubsidizationGame,
    exponential_cp,
    solve_equilibrium,
    thresholds,
)
from repro.analysis import format_table


def main() -> None:
    # The paper's exponential family: demand m = e^{-alpha * t}, per-user
    # throughput lambda = e^{-beta * phi}; `value` is profit per unit traffic.
    video = exponential_cp(alpha=5.0, beta=2.0, value=1.0, name="video")
    news = exponential_cp(alpha=2.0, beta=5.0, value=0.4, name="news")
    isp = AccessISP(price=1.0, capacity=1.0)
    market = Market([video, news], isp)

    # Status quo: one-sided pricing, nobody subsidizes (Section 3.2).
    baseline = market.solve()
    print("== regulated baseline (no subsidies allowed) ==")
    print(f"utilization phi = {baseline.utilization:.4f}")
    print(f"ISP revenue  R  = {baseline.revenue:.4f}")
    print(f"welfare      W  = {baseline.welfare:.4f}")
    print()

    # Deregulate: each CP may subsidize up to q = 1.0 per unit (Section 4).
    game = SubsidizationGame(market, cap=1.0)
    equilibrium = solve_equilibrium(game)
    state = equilibrium.state

    print("== subsidization equilibrium (cap q = 1.0) ==")
    rows = []
    for i, name in enumerate(market.provider_names()):
        rows.append(
            [
                name,
                float(equilibrium.subsidies[i]),
                float(state.effective_prices[i]),
                float(state.populations[i]),
                float(state.throughputs[i]),
                float(state.utilities[i]),
            ]
        )
    print(
        format_table(
            ["cp", "subsidy s", "user price t", "users m", "throughput", "utility"],
            rows,
        )
    )
    print()
    print(f"utilization phi = {state.utilization:.4f}  (was {baseline.utilization:.4f})")
    print(f"ISP revenue  R  = {state.revenue:.4f}  (was {baseline.revenue:.4f})")
    print(f"welfare      W  = {state.welfare:.4f}  (was {baseline.welfare:.4f})")
    print(f"equilibrium certified: KKT residual = {equilibrium.kkt_residual:.2e}")

    # Theorem 3's threshold characterization holds at the equilibrium:
    # s_i = min(tau_i(s), q) for every CP.
    tau = thresholds(game, equilibrium.subsidies)
    implied = np.minimum(tau, game.cap)
    print(f"Theorem 3 check: max |s - min(tau, q)| = "
          f"{float(np.max(np.abs(equilibrium.subsidies - implied))):.2e}")


if __name__ == "__main__":
    main()
