"""Access-market competition: duopoly pricing with sponsored data.

Run with::

    python examples/isp_competition.py

Section 6 of the paper conjectures that competition between access ISPs
would both discipline prices and preserve the incentive to adopt
subsidization. This example uses the library's duopoly extension: two
identical carriers split one user base by a logit rule on prices, CPs
strike per-carrier subsidy deals, and the carriers compete on price.

Shown below: (1) the duopoly price equilibrium undercuts the monopoly
price, more so the more easily users switch; (2) even under competition,
allowing subsidization raises both carriers' revenue and total welfare —
the regulator does not have to choose between the two remedies.
"""

from repro.analysis import format_table
from repro.competition import Duopoly, solve_price_competition
from repro.core.revenue import optimal_price
from repro.providers import AccessISP, Market, exponential_cp


def providers():
    return [
        exponential_cp(2.0, 2.0, value=1.0, name="video"),
        exponential_cp(5.0, 3.0, value=0.6, name="social"),
    ]


def duopoly(switching: float, cap: float) -> Duopoly:
    return Duopoly(
        providers(),
        AccessISP(price=1.0, capacity=0.5, name="carrier-a"),
        AccessISP(price=1.0, capacity=0.5, name="carrier-b"),
        switching=switching,
        cap=cap,
    )


def main() -> None:
    monopoly = optimal_price(
        Market(providers(), AccessISP(price=1.0, capacity=1.0)),
        cap=0.5,
        price_range=(0.05, 2.0),
    )
    print(f"monopoly benchmark: p* = {monopoly.price:.3f}, "
          f"R* = {monopoly.revenue:.4f}")
    print()

    print("== duopoly price equilibrium vs switching sensitivity (q = 0.5) ==")
    rows = []
    for switching in (0.5, 1.0, 2.0, 4.0):
        result = solve_price_competition(
            duopoly(switching, cap=0.5),
            tol=1e-4, grid_points=20, price_range=(0.05, 2.0),
        )
        state = result.state
        rows.append(
            [
                switching,
                float(state.prices[0]),
                float(state.total_revenue),
                float(state.welfare),
            ]
        )
    print(
        format_table(
            ["switching σ", "duopoly price", "industry revenue", "welfare"],
            rows,
        )
    )
    print("(prices fall as users switch more easily; all sit below the "
          f"monopoly {monopoly.price:.3f})")
    print()

    print("== does subsidization still pay under competition? (σ = 2) ==")
    rows = []
    for cap in (0.0, 0.5):
        result = solve_price_competition(
            duopoly(2.0, cap=cap),
            tol=1e-4, grid_points=20, price_range=(0.05, 2.0),
        )
        state = result.state
        rows.append(
            [
                cap,
                float(state.prices[0]),
                float(state.revenues[0]),
                float(state.welfare),
            ]
        )
    print(
        format_table(
            ["policy q", "equilibrium price", "per-carrier revenue", "welfare"],
            rows,
        )
    )
    print()
    print("Reading: competition disciplines the price level while the")
    print("subsidization channel keeps adding revenue and welfare on top —")
    print("the two §6 remedies are complements, not substitutes.")


if __name__ == "__main__":
    main()
