"""Price regulation: caps, viability floors, and the welfare trade-off.

Run with::

    python examples/price_regulation.py

The paper's final policy message: deregulate subsidization, but be ready to
regulate the access price when the market is not competitive. This example
quantifies that message on the paper's 8-CP Section 5 market:

1. a menu of regulatory *price caps* — how welfare and ISP revenue move as
   the cap tightens below the monopoly price;
2. the regulator's constrained problem — the welfare-best price subject to
   an ISP *viability floor* (minimum revenue), showing where "as low as
   possible without killing investment" lands;
3. how the optimal investment level (capacity) responds to the regime.
"""

from repro.analysis import format_table
from repro.core.investment import optimal_capacity
from repro.core.regulation import (
    constrained_welfare_optimal_price,
    price_cap_analysis,
)
from repro.core.revenue import optimal_price
from repro.experiments.scenarios import section5_market


def main() -> None:
    market = section5_market()
    q = 1.0

    monopoly = optimal_price(market, cap=q, price_range=(0.0, 2.5))
    print(f"unregulated monopoly: p* = {monopoly.price:.3f}, "
          f"R* = {monopoly.revenue:.4f}, "
          f"W = {monopoly.equilibrium.state.welfare:.4f}")
    print()

    print("== price-cap menu (q = 1) ==")
    caps = [2.0, 1.0, 0.75, 0.5, 0.25]
    rows = []
    for outcome in price_cap_analysis(market, cap=q, price_caps=caps):
        rows.append(
            [
                outcome.regime,
                outcome.price,
                outcome.revenue,
                outcome.welfare,
                "yes" if outcome.binding else "no",
            ]
        )
    print(
        format_table(
            ["regime", "price", "revenue", "welfare", "binding"], rows
        )
    )
    print()

    print("== regulator's constrained optimum: max W s.t. R >= floor ==")
    rows = []
    for share in (0.9, 0.7, 0.5):
        floor = share * monopoly.revenue
        outcome = constrained_welfare_optimal_price(
            market, cap=q, min_revenue=floor, price_range=(0.0, 2.5)
        )
        rows.append(
            [
                f"{100 * share:.0f}% of monopoly R",
                outcome.price,
                outcome.revenue,
                outcome.welfare,
            ]
        )
    print(format_table(["viability floor", "price", "revenue", "welfare"], rows))
    print()

    print("== investment under each regime (capacity cost 0.15/unit) ==")
    rows = []
    for label, price in (
        ("monopoly price", monopoly.price),
        ("regulated (70% floor)", rows_price := constrained_welfare_optimal_price(
            market, cap=q, min_revenue=0.7 * monopoly.revenue,
            price_range=(0.0, 2.5),
        ).price),
    ):
        outcome = optimal_capacity(
            market.with_price(price), cap=q, unit_cost=0.15,
            capacity_range=(0.1, 6.0), grid_points=24,
        )
        rows.append([label, price, outcome.capacity, outcome.profit])
    print(
        format_table(
            ["regime", "price", "optimal capacity", "ISP profit"], rows
        )
    )
    print()
    print("Reading: moderate caps trade a little ISP revenue for a lot of")
    print("welfare; the viability floor pins how low the regulator can push")
    print("the price before investment incentives break.")


if __name__ == "__main__":
    main()
