"""Legacy setuptools shim.

The offline environment lacks the ``wheel`` package, so PEP 517 editable
installs fail with ``invalid command 'bdist_wheel'``. This shim enables
``pip install -e . --no-use-pep517 --no-build-isolation``, which runs the
classic ``setup.py develop`` path instead. All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
